"""Quickstart: crawl a handful of synthetic sites and detect fingerprinting.

Builds a tiny synthetic web, visits a few homepages with the instrumented
crawler, applies the paper's three detection heuristics, and prints what was
found — the 60-second tour of the public API.

Run:  python examples/quickstart.py
"""

from repro.browser import Browser
from repro.core import FingerprintDetector
from repro.crawler import CanvasCollector
from repro.net import Network

# --- 1. Stand up a miniature Web -------------------------------------------------

network = Network()

# A fingerprinting vendor serving a canvas-fingerprinting script.
vendor = network.server_for("fp-vendor.net")
vendor.add_script(
    "/fp.js",
    """
    var canvas = document.createElement('canvas');
    canvas.width = 240; canvas.height = 60;
    var ctx = canvas.getContext('2d');
    ctx.textBaseline = 'alphabetic';
    ctx.fillStyle = '#f60';
    ctx.fillRect(125, 1, 62, 20);
    ctx.fillStyle = '#069';
    ctx.font = '11pt Arial';
    ctx.fillText('Cwm fjordbank glyphs vext quiz', 2, 15);
    window.__fingerprint = canvas.toDataURL();
    """,
)

# A site embedding the fingerprinter (third-party).
shop = network.server_for("shop.example")
shop.add_resource(
    "/", '<html><title>Shop</title><script src="https://fp-vendor.net/fp.js"></script></html>'
)

# A site with only a benign WebP compatibility check (1x1, lossy format).
blog = network.server_for("blog.example")
blog.add_resource(
    "/",
    """<html><title>Blog</title><script>
    var c = document.createElement('canvas');
    c.width = 1; c.height = 1;
    window.__webp = c.toDataURL('image/webp').indexOf('data:image/webp') === 0;
    </script></html>""",
)

# --- 2. Crawl with the instrumented collector -------------------------------------

collector = CanvasCollector(Browser(network))
observations = [
    collector.collect("shop.example", rank=1, population="top"),
    collector.collect("blog.example", rank=2, population="top"),
]

# --- 3. Detect fingerprinting with the paper's heuristics --------------------------

detector = FingerprintDetector()
for obs in observations:
    outcome = detector.detect(obs)
    verdict = "FINGERPRINTING" if outcome.is_fingerprinting_site else "clean"
    print(f"{obs.domain:15s} -> {verdict}")
    for extraction in outcome.fingerprintable:
        print(
            f"    test canvas {extraction.width}x{extraction.height} "
            f"({extraction.mime}) by {extraction.script_url}"
        )
        print(f"    canvas hash: {extraction.canvas_hash[:16]}...")
    for extraction, reason in outcome.excluded:
        print(
            f"    excluded {extraction.width}x{extraction.height} "
            f"{extraction.mime} ({reason.value})"
        )
