"""Why ad blockers miss fingerprinting scripts (§5.2), mechanism by mechanism.

Builds four sites that each use one documented evasion and crawls them with
an EasyList-armed blocker, showing exactly which requests survive:

1. first-party serving (Akamai-style)  -> first-party exception
2. $document-modified rule (A.6, mgid) -> rule never applies to scripts
3. CNAME cloaking                      -> URL looks first-party, DNS says vendor
4. honest third-party serving          -> actually blocked

Run:  python examples/adblock_evasion.py
"""

from repro.blocklists import RuleMatcher
from repro.browser import AdBlockerExtension, Browser, BrowserProfile
from repro.core import FingerprintDetector
from repro.crawler import CanvasCollector
from repro.net import Network

FP_SCRIPT = """
var c = document.createElement('canvas');
c.width = 220; c.height = 48;
var g = c.getContext('2d');
g.font = '12pt Arial';
g.fillStyle = '#069';
g.fillText('evasion demo pangram zephyr 9', 2, 18);
window.__fp = c.toDataURL();
"""

EASYLIST = """
! demo EasyList
/akam/*$script
||mgid-like.com^$document
||honest-tracker.net^$script,third-party
||cloaked-vendor.net^$script,third-party
"""


def build_network() -> Network:
    net = Network()

    # 1. Akamai-style: script served from the *customer's own* domain.
    bank = net.server_for("bank.example")
    bank.add_script("/akam/11/sensor", FP_SCRIPT)
    bank.add_resource("/", '<script src="/akam/11/sensor"></script>')

    # 2. mgid-style: rule exists but with the $document modifier.
    mgid = net.server_for("mgid-like.com")
    mgid.add_script("/fp.js", FP_SCRIPT)
    news = net.server_for("news.example")
    news.add_resource("/", '<script src="https://mgid-like.com/fp.js"></script>')

    # 3. CNAME cloaking: metrics.travel.example is really cloaked-vendor.net.
    vendor = net.server_for("cloaked-vendor.net")
    vendor.add_script("/collect.js", FP_SCRIPT)
    travel = net.server_for("travel.example")
    travel.add_resource("/", '<script src="https://metrics.travel.example/collect.js"></script>')
    net.alias("metrics.travel.example", "cloaked-vendor.net")

    # 4. Honest third-party: the one case blocking works.
    tracker = net.server_for("honest-tracker.net")
    tracker.add_script("/fp.js", FP_SCRIPT)
    forum = net.server_for("forum.example")
    forum.add_resource("/", '<script src="https://honest-tracker.net/fp.js"></script>')
    return net


def main() -> None:
    network = build_network()
    easylist = RuleMatcher.from_text(EASYLIST, "easylist")
    detector = FingerprintDetector()

    cases = [
        ("bank.example", "first-party serving (Akamai-style)"),
        ("news.example", "$document-modified rule (A.6)"),
        ("travel.example", "CNAME cloaking"),
        ("forum.example", "honest third-party"),
    ]

    for with_blocker in (False, True):
        label = "WITH AdblockPlus" if with_blocker else "control (no blocker)"
        print(f"--- {label} ---")
        extensions = (AdBlockerExtension("AdblockPlus", [easylist]),) if with_blocker else ()
        collector = CanvasCollector(Browser(network, BrowserProfile(extensions=extensions)))
        for domain, mechanism in cases:
            obs = collector.collect(domain, rank=1, population="top")
            outcome = detector.detect(obs)
            status = "fingerprinted" if outcome.is_fingerprinting_site else "BLOCKED"
            blocked = f" (blocked: {obs.blocked_urls})" if obs.blocked_urls else ""
            print(f"  {domain:18s} [{mechanism:34s}] -> {status}{blocked}")
        print()

    # The static §5.1 check counts the mgid rule as "listed" only for
    # documents; with resource type script it does not apply — matching how
    # the paper configures adblockparser.
    print("Static checks on https://mgid-like.com/fp.js:")
    print("  listed as script?  ", easylist.listed("https://mgid-like.com/fp.js", "script"))
    print("  listed as document?", easylist.listed("https://mgid-like.com/fp.js", "document"))


if __name__ == "__main__":
    main()
