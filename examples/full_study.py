"""The whole measurement study, end to end, at a configurable scale.

Builds the calibrated synthetic web (Tranco-like ranking, 13 vendors,
boutique long tail, blocklists), runs the control + ad-blocker crawls, and
prints every table/figure with a paper-vs-measured diff.

Run:  python examples/full_study.py [scale]
      (scale defaults to 0.05 = 1,000 top + 1,000 tail sites; 1.0 is the
       paper's full 20k + 20k and takes a few minutes)
"""

import sys
import time

from repro.analysis import study_report
from repro.config import StudyScale
from repro.webgen import build_world


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"Building synthetic web at scale {scale} "
          f"({int(20000 * scale)} top + {int(20000 * scale)} tail sites)...")
    world = build_world(StudyScale(fraction=scale))

    t0 = time.time()
    result = world.run_full_study(include_adblock_crawls=True, include_cross_machine=True)
    print(f"Study completed in {time.time() - t0:.1f}s\n")

    print(study_report(result))


if __name__ == "__main__":
    main()
