"""Canvas randomization vs the render-twice check (§5.3, Algorithm 1).

A fingerprinting script renders the same test canvas twice and compares the
two extractions:

* no defense           -> identical   -> fingerprint accepted
* per-render noise     -> different   -> fingerprint discarded (defense detected)
* per-session noise    -> identical   -> the check is blind (footnote 7),
                                         but the fingerprint still differs
                                         from the clean one across sessions.

Run:  python examples/canvas_randomization.py
"""

from repro.browser import Browser, BrowserProfile, CanvasRandomization
from repro.net import Network

# Algorithm 1, as a page script.
RENDER_TWICE = """
function renderTestCanvas() {
  var c = document.createElement('canvas');
  c.width = 220; c.height = 48;
  var g = c.getContext('2d');
  g.font = '12pt Arial';
  g.fillStyle = '#205080';
  g.fillRect(120, 2, 60, 18);
  g.fillStyle = '#803010';
  g.fillText('randomization probe zephyr 7', 2, 18);
  return c.toDataURL();
}
var canvas1 = renderTestCanvas();
var canvas2 = renderTestCanvas();
if (canvas1 !== canvas2) {
  window.__canvasComponent = 'unstable-discarded';
} else {
  window.__canvasComponent = canvas1;
}
console.log(canvas1 === canvas2 ? 'stable' : 'UNSTABLE');
"""


def run(mode: CanvasRandomization, session_seed: int = 0xC0FFEE) -> str:
    network = Network()
    site = network.server_for("probe.example")
    site.add_resource("/", f"<script>{RENDER_TWICE}</script>")
    profile = BrowserProfile(privacy_mode=mode, session_seed=session_seed)
    page = Browser(network, profile).load("https://probe.example/")
    verdict = page.console[-1]
    first, second = (e.data_url for e in page.instrument.extractions[:2])
    return verdict, first, second


def main() -> None:
    clean_verdict, clean_first, _ = run(CanvasRandomization.NONE)
    print(f"no defense:        render-twice says {clean_verdict!r}")

    verdict, a, b = run(CanvasRandomization.PER_RENDER)
    print(f"per-render noise:  render-twice says {verdict!r} "
          f"(extractions differ: {a != b}) -> fingerprinter discards the canvas")

    verdict, a, b = run(CanvasRandomization.PER_SESSION)
    print(f"per-session noise: render-twice says {verdict!r} "
          f"(extractions differ: {a != b}) -> the check is blind to it")

    # But per-session noise still randomizes the fingerprint across sessions:
    _, session1, _ = run(CanvasRandomization.PER_SESSION, session_seed=1)
    _, session2, _ = run(CanvasRandomization.PER_SESSION, session_seed=2)
    print(f"per-session noise across two sessions: fingerprints equal? {session1 == session2}")
    print(f"clean vs per-session fingerprint equal? {clean_first == session1}")


if __name__ == "__main__":
    main()
