"""Fingerprinting the fingerprinters: vendor attribution walkthrough.

Demonstrates the Appendix A.3 methodology on a small world:

1. harvest each vendor's test canvases from its public demo page,
2. or from known customer sites (confirmed by script URL pattern),
3. attribute crawl observations to vendors by canvas hash — which works
   even when the script is bundled first-party and the URL tells you
   nothing — plus Imperva's URL-regex special case.

Run:  python examples/vendor_attribution.py
"""

from repro.config import StudyScale
from repro.core import FingerprintDetector, VendorAttributor
from repro.core.pipeline import harvest_vendor_signatures
from repro.crawler import run_crawl
from repro.webgen import build_world


def main() -> None:
    world = build_world(StudyScale(fraction=0.04))

    print("Ground-truth sources (Table 3):")
    for knowledge in world.vendor_knowledge():
        source = (
            f"demo page {knowledge.demo_url}"
            if knowledge.demo_url
            else f"{len(knowledge.known_customers)} known customers"
            if knowledge.known_customers
            else "script pattern only"
        )
        pattern = knowledge.script_pattern or ("<URL regex>" if knowledge.uses_url_regex else "-")
        print(f"  {knowledge.name:26s} via {source:40s} pattern: {pattern}")

    print("\nCrawling the synthetic web (control configuration)...")
    control = run_crawl(world.network, world.all_targets, label="control")

    print("Harvesting vendor canvas signatures...")
    signatures = harvest_vendor_signatures(world.network, world.vendor_knowledge(), control)
    for sig in signatures:
        print(f"  {sig.name:26s} {len(sig.canvas_hashes)} distinct test canvases harvested")

    detector = FingerprintDetector()
    outcomes = detector.detect_all(control.successful())
    attributor = VendorAttributor(signatures)
    attributions = attributor.attribute_all(control.by_domain(), outcomes)

    print("\nPer-site attributions (first 15 fingerprinting sites):")
    shown = 0
    for domain, attribution in sorted(attributions.items()):
        if not attribution.vendors:
            continue
        evidence = ", ".join(f"{v} ({attribution.evidence[v]})" for v in sorted(attribution.vendors))
        print(f"  {domain:28s} -> {evidence}")
        shown += 1
        if shown >= 15:
            break

    counts = attributor.vendor_site_counts(attributions, control.populations())
    print("\nVendor reach (sites, top/tail):")
    for vendor, c in sorted(counts.items(), key=lambda kv: -(kv[1]["top"] + kv[1]["tail"])):
        if c["top"] or c["tail"]:
            print(f"  {vendor:26s} {c['top']:4d} / {c['tail']:4d}")


if __name__ == "__main__":
    main()
