#!/usr/bin/env python
"""Repo-specific AST lint: guard the exactly-once worker-metrics channel.

Every crawl worker ships its telemetry to the parent process exactly once,
as an explicit payload delta: ``perf.diff_snapshots`` for the render/JS
cache counters and ``obs.worker_payload`` for the unified metrics,
histograms and profiler samples.  The parent folds them back with
``perf.PERF.merge`` / ``obs.ingest_worker``.  That channel only stays
exactly-once if all counters live in the process-wide singletons — a second
registry instantiated at module scope would accumulate counts that no
payload ever carries, silently losing telemetry for every sharded run.

Three rules, all enforced purely on the AST (nothing is imported):

``detached-registry``
    Module-level instantiation of ``PerfCounters`` / ``MetricsRegistry`` /
    ``SampleTable`` anywhere but the blessed singleton homes
    (``perf.PERF``, ``obs.METRICS``, ``obs.profiler.TABLE``).  Local
    instantiations inside functions are fine — tests and snapshot helpers
    build throwaway registries — but a module-level one is shared state
    that dodges the payload channel.

``dynamic-cache-layer``
    ``ByteBudgetLRU(...)`` whose layer name is not a string literal.  The
    layer name is the merge key in every worker payload and perf report;
    a computed name cannot be merged deterministically across workers or
    compared across runs.

``worker-missing-payload``
    A shard worker entry point (private module-level function named
    ``_*_worker`` — the shape multiprocessing dispatch targets take here)
    that never calls both ``diff_snapshots`` and ``worker_payload``.  Such
    a worker does its work, then exits with its counters stranded in the
    child process.

Usage::

    python tools/lint_repro.py            # lints src/repro
    python tools/lint_repro.py PATH ...   # lints the given files/trees

Exit status 1 when any finding is reported, 0 otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Registry classes that must only be instantiated at module level in their
#: blessed singleton homes (file suffix -> class names allowed there).
REGISTRY_CLASSES = ("PerfCounters", "MetricsRegistry", "SampleTable")
SINGLETON_HOMES = {
    "repro/perf.py": {"PerfCounters"},
    "repro/obs/__init__.py": {"MetricsRegistry"},
    "repro/obs/profiler.py": {"SampleTable"},
}

#: Both must appear in a worker entry point for the channel to round-trip.
PAYLOAD_CALLS = ("diff_snapshots", "worker_payload")

Finding = Tuple[Path, int, str, str]


def _call_name(node: ast.Call) -> str:
    """Rightmost name of the called expression (``perf.ByteBudgetLRU`` ->
    ``ByteBudgetLRU``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _module_level_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """Every Call that executes at import time (module scope, including
    inside module-level conditionals, but not inside def/class bodies)."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                yield node


def _is_worker_def(node: ast.stmt) -> bool:
    return (
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name.endswith("_worker")
        and node.name.startswith("_")
        and not node.name.startswith("_on_")
    )


def lint_file(path: Path, root: Path) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [(path, error.lineno or 0, "syntax-error", str(error))]

    rel = path.as_posix()
    findings: List[Finding] = []

    allowed_here = set()
    for suffix, names in SINGLETON_HOMES.items():
        if rel.endswith(suffix):
            allowed_here = names
            break

    for call in _module_level_calls(tree):
        name = _call_name(call)
        if name in REGISTRY_CLASSES and name not in allowed_here:
            findings.append(
                (
                    path,
                    call.lineno,
                    "detached-registry",
                    f"module-level {name}() outside its singleton home: its "
                    "counters never ship in a worker payload (use "
                    "perf.PERF / obs.METRICS / obs.profiler.TABLE)",
                )
            )

    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and _call_name(node) == "ByteBudgetLRU"):
            continue
        layer = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "layer":
                layer = keyword.value
        if not (isinstance(layer, ast.Constant) and isinstance(layer.value, str)):
            findings.append(
                (
                    path,
                    node.lineno,
                    "dynamic-cache-layer",
                    "ByteBudgetLRU layer name must be a string literal: it "
                    "is the merge key for worker perf payloads",
                )
            )

    for stmt in tree.body:
        if not _is_worker_def(stmt):
            continue
        called = {
            _call_name(node)
            for node in ast.walk(stmt)
            if isinstance(node, ast.Call)
        }
        missing = [name for name in PAYLOAD_CALLS if name not in called]
        if missing:
            findings.append(
                (
                    path,
                    stmt.lineno,
                    "worker-missing-payload",
                    f"worker entry point {stmt.name}() never calls "
                    f"{' / '.join(missing)}: its telemetry dies with the "
                    "child process",
                )
            )

    return findings


def iter_python_files(paths: List[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    root = Path(__file__).resolve().parent.parent
    targets = [Path(arg) for arg in argv] or [root / "src" / "repro"]

    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(targets):
        checked += 1
        findings.extend(lint_file(path, root))

    for path, lineno, rule, message in findings:
        print(f"{path}:{lineno}: {rule}: {message}")
    print(
        f"lint_repro: {checked} file(s) checked, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
