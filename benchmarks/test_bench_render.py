"""Benchmark: the render-acceleration caches on a repeated-cluster workload.

The paper's core measurement artifact is the canvas *cluster*: the same
vendor script rendering the byte-identical canvas on hundreds of customer
sites.  That repetition is exactly what the render cache exploits — the
first site rasterizes, every later site in the cluster replays from the
whole-canvas cache (and the glyph atlas / path masks / encode memo absorb
partial overlap across clusters).

Two benchmarks:

* ``test_bench_render_repeated_cluster`` — drives the canvas API directly
  with a FingerprintJS-style workload repeated across N simulated sites,
  cold (caches disabled) vs warm (enabled).  Asserts byte-identical data
  URLs and the >= 3x warm speedup the acceleration is expected to deliver.
* ``test_bench_render_crawl_cluster`` — the same cluster behind the full
  browser stack (HTML + JS interpreter + bindings), measuring how much of
  the page wall time the caches recover on a crawl.

Both record op counts, wall times and per-layer hit rates into
``BENCH_render.json`` via the ``bench_json`` fixture.
"""

import math
import time

import pytest

from repro import perf
from repro.browser import Browser
from repro.canvas import HTMLCanvasElement, INTEL_UBUNTU
from repro.net import Network
from repro.webgen import scripts as S

#: Simulated sites per cluster: one cold rasterization + N-1 cache hits.
CLUSTER_SITES = 24

PANGRAM = "Cwm fjordbank glyphs vext quiz"


@pytest.fixture
def cache_sandbox():
    """Run a benchmark against pristine caches, restoring the session after."""
    saved = perf.current_config()
    perf.reset_all()
    yield
    perf.configure(saved)
    perf.reset_all()


def _render_fingerprint_canvas(device=INTEL_UBUNTU):
    """The canonical FingerprintJS-style canvas: text pass + geometry pass."""
    c = HTMLCanvasElement(240, 140, device=device)
    ctx = c.getContext("2d")
    ops = 0
    # Text pass (double-drawn, offset, translucent second layer).
    ctx.textBaseline = "top"
    ctx.font = "11pt Arial"
    ctx.fillStyle = "#f60"
    ctx.fillRect(125, 1, 62, 20)
    ctx.fillStyle = "#069"
    ctx.fillText(PANGRAM, 2, 15)
    ctx.fillStyle = "rgba(102, 204, 0, 0.7)"
    ctx.fillText(PANGRAM, 4, 17)
    ops += 3
    # Geometry pass: overlapping composited circles (the winding workload).
    ctx.globalCompositeOperation = "multiply"
    for i, color in enumerate(("#f2f", "#2ff", "#ff2")):
        ctx.fillStyle = color
        ctx.beginPath()
        ctx.arc(50 + i * 60, 80, 40, 0, math.pi * 2, True)
        ctx.closePath()
        ctx.fill()
        ops += 1
    ctx.globalCompositeOperation = "source-over"
    ctx.shadowBlur = 4
    ctx.shadowColor = "#222"
    ctx.strokeStyle = "#a0a"
    ctx.strokeRect(10, 100, 200, 30)
    ops += 1
    return c, ops


def _run_cluster(sites):
    """Render the cluster canvas once per site; return (seconds, outputs, ops)."""
    outputs = []
    ops = 0
    started = time.perf_counter()
    for _ in range(sites):
        canvas, n = _render_fingerprint_canvas()
        ops += n
        outputs.append(canvas.toDataURL())
        outputs.append(canvas.toDataURL("image/jpeg", 0.8))
    return time.perf_counter() - started, outputs, ops


def _hit_rates(snapshot):
    return {
        layer: {
            "hits": int(row.get("hits", 0)),
            "misses": int(row.get("misses", 0)),
            "hit_rate": row.get("hit_rate", 0.0),
            "saved_seconds": row.get("saved_seconds", 0.0),
        }
        for layer, row in snapshot.items()
        if row.get("hits", 0) or row.get("misses", 0)
    }


def test_bench_render_repeated_cluster(cache_sandbox, bench_json):
    # Cold: every site rasterizes from scratch.
    perf.configure(perf.RenderCacheConfig(enabled=False))
    cold_seconds, cold_outputs, ops = _run_cluster(CLUSTER_SITES)

    # Warm: first site populates the caches, the rest of the cluster hits.
    perf.configure(perf.RenderCacheConfig())
    perf.reset_all()
    before = perf.PERF.snapshot()
    warm_seconds, warm_outputs, _ = _run_cluster(CLUSTER_SITES)
    counters = perf.diff_snapshots(before, perf.PERF.snapshot())

    assert warm_outputs == cold_outputs, "caches must be exactly transparent"
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    render = counters.get("render_cache", {})
    assert render.get("hits", 0) >= CLUSTER_SITES - 1
    assert speedup >= 3, (
        f"warm cluster should be >= 3x faster than cold (got {speedup:.1f}x)"
    )

    bench_json(
        "render",
        "repeated_cluster",
        sites=CLUSTER_SITES,
        draw_ops=ops,
        extractions=len(cold_outputs),
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        speedup=speedup,
        hit_rates=_hit_rates(counters),
    )

    print()
    print(
        f"{CLUSTER_SITES} sites x {ops // CLUSTER_SITES} ops: "
        f"cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s ({speedup:.1f}x)"
    )
    for layer, row in sorted(_hit_rates(counters).items()):
        print(
            f"  {layer:14s} {row['hit_rate']:6.1%} hit rate "
            f"({row['hits']} hits / {row['misses']} misses)"
        )


def _crawl_cluster(sites):
    """Load ``sites`` pages that each run the same fingerprinting script."""
    source = S.combined_fingerprint_script(
        PANGRAM, "#f60", "#069", font="11pt Arial", hue_offset=0,
        double_render=True, vendor="bench",
    )
    outputs = []
    started = time.perf_counter()
    for index in range(sites):
        net = Network()
        host = f"site-{index:03d}.example"
        site = net.server_for(host)
        site.add_resource("/", "<script src='/fp.js'></script>")
        site.add_resource("/fp.js", source, content_type="application/javascript")
        page = Browser(net).load(f"https://{host}/")
        outputs.append(tuple(e.data_url for e in page.instrument.extractions))
    return time.perf_counter() - started, outputs


def test_bench_render_crawl_cluster(cache_sandbox, bench_json):
    perf.configure(perf.RenderCacheConfig(enabled=False))
    cold_seconds, cold_outputs = _crawl_cluster(CLUSTER_SITES)

    perf.configure(perf.RenderCacheConfig())
    perf.reset_all()
    before = perf.PERF.snapshot()
    warm_seconds, warm_outputs = _crawl_cluster(CLUSTER_SITES)
    counters = perf.diff_snapshots(before, perf.PERF.snapshot())

    assert warm_outputs == cold_outputs, "caches must be exactly transparent"
    assert counters.get("render_cache", {}).get("hits", 0) > 0
    speedup = cold_seconds / max(warm_seconds, 1e-9)

    bench_json(
        "render",
        "crawl_cluster",
        sites=CLUSTER_SITES,
        extractions=sum(len(urls) for urls in cold_outputs),
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        speedup=speedup,
        hit_rates=_hit_rates(counters),
    )

    print()
    print(
        f"crawl of {CLUSTER_SITES} cluster sites: cold {cold_seconds:.2f}s, "
        f"warm {warm_seconds:.2f}s ({speedup:.1f}x end-to-end)"
    )
