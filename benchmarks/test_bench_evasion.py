"""Benchmark: §5.2 serving-context evasion analysis."""

from repro.core.evasion import analyze_serving_context
from repro.experiments import run_experiment


def test_bench_evasion(benchmark, world, study):
    def regenerate():
        return analyze_serving_context(study.outcomes, study.populations, dns=world.network.dns)

    context = benchmark(regenerate)
    print()
    print(run_experiment("evasion", study))

    # Paper's qualitative findings.
    assert context.first_party_fraction("top") > 0.25      # ~49%: common
    assert context.subdomain_fraction("top") >= context.subdomain_fraction("tail")
    assert context.cdn_fraction("top") < 0.10               # small but nonzero surface
