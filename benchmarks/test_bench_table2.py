"""Benchmark: Table 2 — ad-blocker impact comparison.

The three crawls (control, AdblockPlus, uBlock Origin) run once in the
session fixture; the benchmark times the comparison that builds the table
and prints the regenerated rows.
"""

from repro.core.detection import FingerprintDetector
from repro.core.evasion import compare_adblock_crawls
from repro.experiments import run_experiment


def test_bench_table2(benchmark, study):
    control = study.control
    rows = study.adblock_rows
    assert len(rows) == 3, "fixture must have run the ad-blocker crawls"

    detector = FingerprintDetector()

    def regenerate():
        return compare_adblock_crawls(control, {}, detector)

    benchmark(regenerate)
    print()
    print(run_experiment("table2", study))

    control_row, abp, ubo = rows
    for blocked in (abp, ubo):
        for pop in ("top", "tail"):
            kept = blocked.canvases[pop] / max(1, control_row.canvases[pop])
            # Paper's headline: blockers remove only ~5% of test canvases.
            assert kept > 0.8, (blocked.label, pop, kept)
