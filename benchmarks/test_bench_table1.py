"""Benchmark: Table 1 — vendor attribution over the whole crawl."""

from repro.core.attribution import VendorAttributor
from repro.experiments import run_experiment


def test_bench_table1(benchmark, study):
    attributor = VendorAttributor(study.signatures)
    observations = study.control.by_domain()

    def regenerate():
        attributions = attributor.attribute_all(observations, study.outcomes)
        return attributor.vendor_site_counts(attributions, study.populations)

    counts = benchmark(regenerate)
    print()
    print(run_experiment("table1", study))
    # Qualitative Table 1 shape: Akamai+FPJS lead the top, Shopify the tail.
    big = counts["Akamai"]["top"] + counts["FingerprintJS"]["top"]
    rest = sum(c["top"] for v, c in counts.items() if v not in ("Akamai", "FingerprintJS"))
    assert big >= rest * 0.5
    assert counts["Shopify"]["tail"] >= counts["Shopify"]["top"]
