"""Benchmark: cost of the observability layer on the study pipeline.

Three configurations run the same study on one pre-warmed world:

``stubbed``
    The true no-instrumentation baseline: every ``obs`` hot-path primitive
    (``span``/``event``/``inc``/``gauge``/``observe``) is replaced with a
    bare no-op, so the pipeline pays only the function-call sites.
``off``
    The shipped default — real primitives with ``REPRO_OBS_TRACE=0``.
    The headline claim is that this is within 5% of ``stubbed``.
``on``
    Full tracing (``REPRO_OBS_TRACE=1``), every span and event recorded.

The ratios (not the wall seconds) are the contract: they compare two runs
from the same session on the same machine, so the committed baseline gates
them tightly (``--max-regression 0.05``) where raw seconds never could.
A separate micro-benchmark reports event-recording throughput for sizing
``REPRO_OBS_MAX_EVENTS``.
"""

import contextlib
import os
import time

from repro import obs
from repro.config import StudyScale
from repro.obs.config import ObsConfig
from repro.obs.trace import NOOP_SPAN, Tracer
from repro.webgen import build_world

ROUNDS = 3


def _obs_scale() -> float:
    # The overhead bench runs the study 9+ times; use a slice of the
    # session bench scale so the suite stays under a couple of minutes.
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05")) * 0.4


@contextlib.contextmanager
def _stubbed_primitives():
    """Replace the obs hot-path wrappers with bare no-ops."""
    saved = {name: getattr(obs, name) for name in ("span", "event", "inc", "gauge", "observe")}
    obs.span = lambda name, **attrs: NOOP_SPAN
    obs.event = lambda name, sample_key="", **attrs: None
    obs.inc = lambda name, value=1.0: None
    obs.gauge = lambda name, value: None
    obs.observe = lambda name, value: None
    try:
        yield
    finally:
        for name, fn in saved.items():
            setattr(obs, name, fn)


def _run_study(world):
    return world.run_full_study(jobs=1, include_adblock_crawls=False)


def _timed(world) -> float:
    started = time.perf_counter()
    _run_study(world)
    return time.perf_counter() - started


def test_bench_obs_pipeline_overhead(bench_json):
    world = build_world(StudyScale(fraction=_obs_scale()))
    previous = obs.config()
    _run_study(world)  # warm render caches so every timed round does equal work

    times = {"stubbed": [], "off": [], "on": []}
    try:
        for _ in range(ROUNDS):  # interleave modes so drift hits all three alike
            obs.configure(ObsConfig(trace=False))
            with _stubbed_primitives():
                times["stubbed"].append(_timed(world))
            times["off"].append(_timed(world))
            obs.configure(ObsConfig(trace=True))
            obs.reset()
            times["on"].append(_timed(world))
    finally:
        obs.configure(previous)
        obs.reset()

    stubbed = min(times["stubbed"])
    off = min(times["off"])
    on = min(times["on"])
    off_overhead = off / stubbed - 1.0
    on_overhead = on / off - 1.0

    # The tentpole contract: tracing disabled is indistinguishable from no
    # instrumentation at all (<5% on the end-to-end pipeline).
    assert off <= stubbed * 1.05, (
        f"tracing-off overhead {off_overhead:.1%} exceeds 5% "
        f"(stubbed {stubbed:.3f}s, off {off:.3f}s)"
    )

    bench_json(
        "obs",
        "pipeline_overhead",
        stubbed_seconds=stubbed,
        off_seconds=off,
        on_seconds=on,
        off_overhead=off_overhead,
        on_overhead=on_overhead,
        # check_regression gates on "speedup": stubbed/off drifts below
        # 0.95 exactly when tracing-off overhead crosses the 5% line.
        # Capped at 1.0 — runs where "off" beats "stubbed" are timer noise
        # and would otherwise tighten the committed baseline's floor.
        speedup=min(1.0, stubbed / off),
    )

    print()
    print(f"stubbed {stubbed:.3f}s | tracing off {off:.3f}s (+{off_overhead:.1%}) "
          f"| tracing on {on:.3f}s (+{on_overhead:.1%} vs off)")


def test_bench_obs_event_throughput(bench_json):
    tracer = Tracer(ObsConfig(trace=True, max_events=10_000_000))
    count = 200_000
    started = time.perf_counter()
    for i in range(count):
        tracer.event("checkpoint.finalize", n=i)
    seconds = time.perf_counter() - started
    rate = count / seconds
    assert len(tracer.records()) == count

    bench_json(
        "obs",
        "event_throughput",
        events=count,
        seconds=seconds,
        events_per_second=rate,
    )
    print()
    print(f"{count} events in {seconds:.3f}s ({rate / 1e6:.2f}M events/s)")
