"""Benchmark: Table 3 — vendor ground-truth harvesting (A.3)."""

from repro.core.pipeline import harvest_vendor_signatures
from repro.experiments import run_experiment


def test_bench_table3(benchmark, world, study):
    knowledge = world.vendor_knowledge()

    def regenerate():
        return harvest_vendor_signatures(world.network, knowledge, study.control)

    signatures = benchmark(regenerate)
    print()
    print(run_experiment("table3", study))

    by_name = {s.name: s for s in signatures}
    # Demo-equipped vendors must harvest at least one canvas.
    assert by_name["FingerprintJS"].canvas_hashes
    assert by_name["Sift Science"].canvas_hashes
    # Imperva is regex-only: no shared canvases to harvest.
    assert not by_name["Imperva"].canvas_hashes
    assert by_name["Imperva"].url_regex is not None
