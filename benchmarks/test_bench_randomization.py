"""Benchmark: §5.3 render-twice inconsistency-check prevalence, plus an
active probe of the three randomization defenses."""

from repro.browser import Browser, BrowserProfile, CanvasRandomization
from repro.core.evasion import render_twice_fraction
from repro.experiments import run_experiment
from repro.net import Network

_PROBE = """
function render() {
  var c = document.createElement('canvas');
  c.width = 200; c.height = 40;
  var g = c.getContext('2d');
  g.font = '12px Arial';
  g.fillText('probe zephyr 42', 2, 20);
  return c.toDataURL();
}
window.__stable = render() === render();
"""


def test_bench_render_twice_prevalence(benchmark, study):
    fraction = benchmark(render_twice_fraction, study.outcomes)
    print()
    print(run_experiment("randomization", study))
    assert 0.2 < fraction < 0.7  # paper: 45%


def test_bench_randomization_probe(benchmark):
    network = Network()
    network.server_for("probe.example").add_resource("/", f"<script>{_PROBE}</script>")

    def probe_all_modes():
        results = {}
        for mode in CanvasRandomization:
            browser = Browser(network, BrowserProfile(privacy_mode=mode))
            page = browser.load("https://probe.example/")
            a, b = (e.data_url for e in page.instrument.extractions[:2])
            results[mode] = a == b
        return results

    results = benchmark(probe_all_modes)
    assert results[CanvasRandomization.NONE] is True
    assert results[CanvasRandomization.PER_RENDER] is False   # detected
    assert results[CanvasRandomization.PER_SESSION] is True   # blind spot
