"""Micro-benchmarks for the substrates the study's wall-clock depends on:
test-canvas rendering, PNG encoding, JS execution, page loads, and
blocklist matching."""

import numpy as np

from repro.blocklists import RuleMatcher
from repro.browser import Browser
from repro.canvas import HTMLCanvasElement, INTEL_UBUNTU, png_encode
from repro.js import Interpreter
from repro.net import Network

_FPJS_STYLE_DRAW = """
var c = document.createElement('canvas');
c.width = 240; c.height = 60;
var g = c.getContext('2d');
g.textBaseline = 'alphabetic';
g.fillStyle = '#f60';
g.fillRect(125, 1, 62, 20);
g.fillStyle = '#069';
g.font = '11pt Arial';
g.fillText('Cwm fjordbank glyphs vext quiz', 2, 15);
window.__fp = c.toDataURL();
"""


def test_bench_canvas_text_render(benchmark):
    def render():
        canvas = HTMLCanvasElement(240, 60, device=INTEL_UBUNTU)
        ctx = canvas.getContext("2d")
        ctx.fillStyle = "#f60"
        ctx.fillRect(125, 1, 62, 20)
        ctx.fillStyle = "#069"
        ctx.font = "11pt Arial"
        ctx.fillText("Cwm fjordbank glyphs vext quiz", 2, 15)
        return canvas.toDataURL()

    url = benchmark(render)
    assert url.startswith("data:image/png;base64,")


def test_bench_canvas_geometry_render(benchmark):
    import math

    def render():
        canvas = HTMLCanvasElement(120, 120, device=INTEL_UBUNTU)
        ctx = canvas.getContext("2d")
        ctx.globalCompositeOperation = "multiply"
        for i, color in enumerate(("#f2f", "#2ff", "#ff2")):
            ctx.fillStyle = color
            ctx.beginPath()
            ctx.arc(40 + i * 20, 40 + (i % 2) * 20, 30, 0, math.pi * 2, True)
            ctx.closePath()
            ctx.fill()
        return canvas.toDataURL()

    url = benchmark(render)
    assert url.startswith("data:image/png")


def test_bench_png_encode(benchmark):
    rng = np.random.default_rng(1)
    pixels = rng.integers(0, 256, size=(150, 300, 4), dtype=np.uint8)
    data = benchmark(png_encode, pixels)
    assert data.startswith(b"\x89PNG")


def test_bench_js_execution(benchmark):
    source = """
    var total = 0;
    for (var i = 0; i < 500; i++) { total = (total * 31 + i) % 1000003; }
    total;
    """

    def run():
        return Interpreter().run(source)

    assert benchmark(run) >= 0


def test_bench_page_load(benchmark):
    network = Network()
    site = network.server_for("bench.example")
    site.add_resource("/", f"<html><script>{_FPJS_STYLE_DRAW}</script></html>")
    browser = Browser(network)

    page = benchmark(browser.load, "https://bench.example/")
    assert page.ok and page.instrument.extractions


def test_bench_blocklist_matching(benchmark, world):
    matcher = RuleMatcher.from_text(world.easylist_text, "easylist")
    urls = [
        "https://privacy-cs.mail.ru/counter/tmr.js",
        "https://benign.example/assets/app.js",
        "https://js.aldata-media.com/fp.min.js",
        "https://shop.example/akam/13/7a6b9f2e",
    ] * 10

    def match_all():
        return sum(1 for u in urls if matcher.listed(u, "script"))

    hits = benchmark(match_all)
    assert hits == 30  # mail.ru + aldata + akamai match; benign does not
