#!/usr/bin/env python
"""Fail CI when a benchmark run regresses against its committed baseline.

Usage::

    python benchmarks/check_regression.py CURRENT.json BASELINE.json [--max-regression 0.25]

Only machine-independent metrics are compared — cache ``speedup`` ratios and
per-layer ``hit_rate`` fractions — never raw wall seconds, which depend on
the runner.  A metric regresses when::

    current < baseline * (1 - max_regression)

Improvements and new benchmarks never fail; a benchmark present in the
baseline but missing from the current run does (it means the suite silently
stopped measuring something).

Exit codes: 0 ok, 1 regression, 2 missing/unreadable baseline (a setup
problem, not a perf problem — commit a baseline rather than loosening the
gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterator, Tuple


def comparable_metrics(payload: dict) -> Iterator[Tuple[str, float]]:
    """Yield ("bench.metric", value) for every machine-independent metric."""
    for bench, metrics in sorted(payload.get("results", {}).items()):
        if "speedup" in metrics:
            yield f"{bench}.speedup", float(metrics["speedup"])
        for layer, row in sorted(metrics.get("hit_rates", {}).items()):
            yield f"{bench}.hit_rate.{layer}", float(row.get("hit_rate", 0.0))


def check(current: dict, baseline: dict, max_regression: float) -> int:
    """Print a comparison table; return the number of failing metrics."""
    current_metrics = dict(comparable_metrics(current))
    failures = 0
    print(f"{'metric':48s} {'baseline':>10s} {'current':>10s}  status")
    for name, base_value in comparable_metrics(baseline):
        value = current_metrics.get(name)
        if value is None:
            print(f"{name:48s} {base_value:10.3f} {'-':>10s}  MISSING")
            failures += 1
            continue
        floor = base_value * (1.0 - max_regression)
        status = "ok" if value >= floor else f"REGRESSED (floor {floor:.3f})"
        failures += value < floor
        print(f"{name:48s} {base_value:10.3f} {value:10.3f}  {status}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly generated BENCH_*.json")
    parser.add_argument("baseline", type=Path, help="committed baseline BENCH_*.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional drop vs baseline (default 0.25)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"baseline not found: {args.baseline}")
        print(
            "This benchmark has no committed baseline yet.  Generate one and "
            "commit it:\n"
            f"  PYTHONPATH=src python -m pytest benchmarks/ -q   # writes {args.current.name}\n"
            f"  cp {args.current} {args.baseline}\n"
            "then re-run this check."
        )
        return 2
    if not args.current.exists():
        print(f"current benchmark output not found: {args.current}")
        print("Run the benchmark suite first (PYTHONPATH=src python -m pytest benchmarks/ -q).")
        return 2

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures = check(current, baseline, args.max_regression)
    if failures:
        print(f"\n{failures} metric(s) regressed more than {args.max_regression:.0%}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
