"""Shared fixtures for the benchmark suite.

One synthetic world is built and crawled per session (control + two
ad-blocker crawls + cross-machine validation); each benchmark then times the
analysis stage that regenerates its table/figure and prints the regenerated
rows so the output can be compared against the paper.

Scale is controlled by ``REPRO_BENCH_SCALE`` (fraction of the paper's
20k + 20k crawl; default 0.05).
"""

import os

import pytest

from repro.config import StudyScale
from repro.webgen import build_world


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


@pytest.fixture(scope="session")
def world():
    return build_world(StudyScale(fraction=_scale()))


@pytest.fixture(scope="session")
def study(world):
    return world.run_full_study(include_adblock_crawls=True, include_cross_machine=True)
