"""Shared fixtures for the benchmark suite.

One synthetic world is built and crawled per session (control + two
ad-blocker crawls + cross-machine validation); each benchmark then times the
analysis stage that regenerates its table/figure and prints the regenerated
rows so the output can be compared against the paper.

Scale is controlled by ``REPRO_BENCH_SCALE`` (fraction of the paper's
20k + 20k crawl; default 0.05).

Benchmarks that call the ``bench_json`` fixture additionally persist their
headline numbers (op counts, wall times, cache hit rates) as machine-readable
``BENCH_<suite>.json`` files — one per suite — written at session end to the
directory named by ``REPRO_BENCH_OUT`` (default: current directory).  CI
uploads these as artifacts and diffs them against committed baselines.
"""

import json
import os
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.config import StudyScale
from repro.webgen import build_world

#: suite -> benchmark name -> metrics, accumulated across the session.
_BENCH_RESULTS: Dict[str, Dict[str, Dict[str, Any]]] = {}


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


@pytest.fixture(scope="session")
def world():
    return build_world(StudyScale(fraction=_scale()))


@pytest.fixture(scope="session")
def study(world):
    return world.run_full_study(include_adblock_crawls=True, include_cross_machine=True)


@pytest.fixture
def bench_json():
    """Record machine-readable benchmark results.

    ``bench_json(suite, name, **metrics)`` files ``metrics`` under
    ``results[name]`` of ``BENCH_<suite>.json``.  Metrics must be JSON
    serializable (numbers, strings, lists, dicts).
    """

    def record(suite: str, name: str, **metrics: Any) -> None:
        _BENCH_RESULTS.setdefault(suite, {})[name] = metrics

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _BENCH_RESULTS:
        return
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    for suite, results in sorted(_BENCH_RESULTS.items()):
        payload = {"suite": suite, "scale": _scale(), "results": results}
        path = out_dir / f"BENCH_{suite}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}")
