"""Benchmark: Figure 2 — excluded small canvases (A.2)."""

from repro.analysis.figures import render_figure2
from repro.core.detection import ExclusionReason
from repro.experiments import run_experiment


def test_bench_figure2(benchmark, study):
    def regenerate():
        return render_figure2(study, max_examples=2)

    text = benchmark(regenerate)
    print()
    print(run_experiment("figure2", study))
    assert "Figure 2" in text

    # The crawl must actually contain size-excluded canvases to show.
    small = [
        e
        for outcome in study.outcomes.values()
        for e, reason in outcome.excluded
        if reason is ExclusionReason.TOO_SMALL
    ]
    assert small
    assert all(e.width < 16 or e.height < 16 for e in small)
