"""Benchmark: the compiled JS engine vs the tree-walking interpreter.

Three benchmarks, one contract each:

``js_script_cache``
    Cost of producing an executable program for the shared vendor corpus —
    a cold cache (parse + compile every script) vs a warm one (digest
    lookup).  This is the per-site win of the cross-shard compiled-script
    cache: every crawled page re-prepares the same vendor scripts, and the
    warm path skips the whole front end.  The raw ratio is three orders of
    magnitude — far enough past the contract that its exact value is
    timing noise — so the gated ``speedup`` is capped at 100x (dropping
    below the gate means the cache stopped short-circuiting parse+compile,
    the only failure mode that matters) and ``raw_speedup`` records the
    uncapped number.

``js_execution``
    Pure execution: the same compute-heavy script run to completion by
    compiled closures vs the tree-walk, parse excluded from both sides.
    This isolates what slot-resolved scopes, pre-dispatched operators and
    inline caches buy at runtime.

``js_crawl``
    The end-to-end delta: full ``Browser.load`` page loads over
    vendor-script pages in three modes — interpreter, compiled with a cold
    cache per page, compiled warm — plus the ``js.cache`` / ``js.ic`` hit
    rates of the warm run (deterministic for a fixed world, so the
    committed baseline gates them).

All gated metrics are ratios of same-session runs on the same machine,
never raw wall seconds — and each gated ``speedup`` is capped at its
*contract* value (the level below which the engine is actually broken),
with the uncapped ``raw_speedup`` recorded alongside.  Uncapped ratios
drift ~20% run to run from scheduler noise alone, which a 25% regression
gate cannot tell apart from a real regression; the caps make the gate a
stable pass/fail on the claim that matters.
"""

import hashlib
import time

from repro import perf
from repro.browser.browser import Browser
from repro.js import compiler
from repro.js.interpreter import Interpreter
from repro.webgen.vendors import prewarm_sources

ROUNDS = 3

#: Compute-heavy, DOM-free script for the pure-execution benchmark:
#: closures, string methods, array growth and member access — the shapes
#: vendor fingerprinting code is made of.
EXEC_SNIPPET = """
function mix(a, b) { return ((a * 31) + b) % 1000003; }
var acc = 0;
for (var i = 0; i < 150; i++) {
  var s = 'canvas-' + i;
  var h = 0;
  for (var j = 0; j < s.length; j++) { h = mix(h, s.charCodeAt(j)); }
  var arr = [];
  for (var k = 0; k < 20; k++) { arr.push(k * 2); }
  var total = 0;
  for (var k = 0; k < arr.length; k++) { total += arr[k]; }
  acc = mix(mix(acc, h), total);
}
"""


def _best(fn, rounds=ROUNDS):
    return min(fn() for _ in range(rounds))


def test_bench_js_script_cache(bench_json):
    sources = prewarm_sources()
    cache = compiler.script_cache()
    reps = 20

    def prep_seconds(warm):
        def once():
            started = time.perf_counter()
            for _ in range(reps):
                if not warm:
                    cache.clear()
                for i, source in enumerate(sources):
                    compiler.get_or_compile(source, f"vendor{i}.js", {}, (f"vendor{i}", 1))
            return (time.perf_counter() - started) / reps

        return _best(once)

    compiler.prewarm(sources)
    warm = prep_seconds(True)
    cold = prep_seconds(False)
    compiler.prewarm(sources)  # leave the process cache warm for later benches
    speedup = cold / warm

    print(f"\nscript preparation, {len(sources)}-script vendor corpus:")
    print(f"  cold (parse+compile): {cold * 1000:8.3f} ms")
    print(f"  warm (cache hit):     {warm * 1000:8.3f} ms")
    print(f"  warm-cache speedup:   {speedup:8.1f}x")
    bench_json(
        "js",
        "js_script_cache",
        speedup=min(speedup, 100.0),
        raw_speedup=speedup,
        cold_ms=cold * 1000,
        warm_ms=warm * 1000,
        scripts=len(sources),
    )
    assert speedup >= 3.0, f"warm script cache only {speedup:.1f}x faster than cold"


def test_bench_js_execution(bench_json):
    shared_asts = {}  # parse once for the interpreter too: exec-only on both sides
    key = ("bench-exec", 0)
    runs = 10

    def run_seconds(js_compile):
        def once():
            started = time.perf_counter()
            for _ in range(runs):
                interp = Interpreter(ast_cache=shared_asts, js_compile=js_compile)
                interp.run(EXEC_SNIPPET, script_url="bench-exec.js", cache_key=key)
            return time.perf_counter() - started

        return _best(once)

    compiled = run_seconds(True)
    interp = run_seconds(False)
    speedup = interp / compiled

    print("\npure execution (parse excluded):")
    print(f"  tree-walk interpreter: {interp:7.3f} s")
    print(f"  compiled closures:     {compiled:7.3f} s")
    print(f"  execution speedup:     {speedup:7.2f}x")
    bench_json(
        "js",
        "js_execution",
        speedup=min(speedup, 1.8),  # contract: compiled is comfortably faster
        raw_speedup=speedup,
        interp_seconds=interp,
        compiled_seconds=compiled,
    )
    assert speedup > 1.0, f"compiled execution slower than the interpreter ({speedup:.2f}x)"


def _vendor_page_urls(world, limit=30):
    """Targets whose pages execute at least one shared vendor script."""
    cache = compiler.script_cache()
    compiler.prewarm(prewarm_sources())
    urls = []
    for target in world.all_targets:
        if len(urls) >= limit:
            break
        url = f"https://{target.domain}/"
        page = Browser(world.network, js_compile=True).load(url)
        for source in page.script_sources.values():
            digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
            if cache.contains((digest, compiler.ENGINE_VERSION)):
                urls.append(url)
                break
    return urls


def test_bench_js_crawl(world, bench_json):
    urls = _vendor_page_urls(world)
    cache = compiler.script_cache()

    def crawl_seconds(js_compile, warm):
        def once():
            started = time.perf_counter()
            for url in urls:
                if js_compile and not warm:
                    cache.clear()
                Browser(world.network, js_compile=js_compile).load(url)
            return time.perf_counter() - started

        return _best(once)

    compiler.prewarm(prewarm_sources())
    warm = crawl_seconds(True, True)

    before = perf.PERF.snapshot()
    crawl_seconds(True, True)  # one more warm round, bracketed for hit rates
    delta = perf.diff_snapshots(before, perf.PERF.snapshot())
    hit_rates = {}
    for layer in ("js.cache", "js.ic"):
        row = delta.get(layer, {})
        lookups = row.get("hits", 0.0) + row.get("misses", 0.0)
        hit_rates[layer] = {"hit_rate": row.get("hits", 0.0) / lookups if lookups else 0.0}

    cold = crawl_seconds(True, False)
    compiler.prewarm(prewarm_sources())
    interp = crawl_seconds(False, False)
    speedup = interp / warm

    print(f"\nend-to-end page loads, {len(urls)} vendor-script pages:")
    print(f"  interpreter:          {interp * 1000:8.1f} ms")
    print(f"  compiled, cold cache: {cold * 1000:8.1f} ms")
    print(f"  compiled, warm cache: {warm * 1000:8.1f} ms")
    print(f"  warm speedup:         {speedup:8.2f}x")
    for layer, row in sorted(hit_rates.items()):
        print(f"  {layer} hit rate:     {row['hit_rate']:8.3f}")
    bench_json(
        "js",
        "js_crawl",
        speedup=min(speedup, 1.4),  # contract: warm compiled page loads win end to end
        raw_speedup=speedup,
        interp_seconds=interp,
        cold_seconds=cold,
        warm_seconds=warm,
        pages=len(urls),
        hit_rates=hit_rates,
    )
    assert speedup > 1.0, f"compiled crawl slower than the interpreter ({speedup:.2f}x)"
