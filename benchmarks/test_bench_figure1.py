"""Benchmark: Figure 1 — clustering + canvas popularity distribution."""

from repro.core.clustering import cluster_canvases, rank_clusters
from repro.experiments import run_experiment


def test_bench_figure1(benchmark, study):
    def regenerate():
        clusters = cluster_canvases(study.outcomes, study.populations)
        ranked = rank_clusters(clusters, "top")
        return [(c.site_count("top"), c.site_count("tail")) for c in ranked[:50]]

    series = benchmark(regenerate)
    print()
    print(run_experiment("figure1", study))
    # Shape assertions: strictly ranked head, heavy first cluster.
    tops = [t for t, _ in series]
    assert tops == sorted(tops, reverse=True)
    assert tops[0] >= max(1, tops[-1])
