"""Benchmark: the streaming analysis engine vs the batch entry points.

Three headline numbers:

* **streaming_equivalence** — one pass through the mergeable reducers must
  cost about the same wall time as the monolithic batch analyses (they are
  one code path with two drivers, so the ratio hovers around 1.0; a real
  drop means the streaming driver grew per-site overhead);
* **streaming_memory** — folding a persisted dataset through
  ``iter_observations`` with the CLI's bounded bundle must allocate far
  less than the slurp-then-analyze path (the ratio is the payoff of the
  streaming refactor);
* **incremental_append** — appending sites to a block-cached study must
  re-ingest only the new blocks.  The gated ``speedup`` is the ingest-work
  reduction (sites in the dataset / sites actually re-ingested): it is
  deterministic, machine-independent, and exactly the delta property.
  Reduce-stage wall seconds are recorded but not gated — at bench scale
  they are dominated by block-key hashing and partial (un)pickling, which
  cost the same warm or cold.

``speedup`` and ``hit_rates.*.hit_rate`` feed the CI regression gate
(``check_regression.py``); raw seconds and byte counts are informational.
"""

import os
import tempfile
import time
import tracemalloc
from pathlib import Path

import pytest

from repro import obs
from repro.analysis.__main__ import streaming_bundle_spec
from repro.config import StudyScale
from repro.core.clustering import cluster_canvases
from repro.core.detection import FingerprintDetector
from repro.core.evasion import analyze_serving_context, render_twice_fraction
from repro.core.pipeline import run_study
from repro.core.prevalence import compute_prevalence
from repro.core.reducers import BundleSpec
from repro.crawler.crawl import run_crawl
from repro.crawler.storage import iter_observations, load_dataset, save_dataset
from repro.webgen import build_world


def _fresh_world():
    fraction = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
    return build_world(StudyScale(fraction=fraction))


@pytest.fixture(scope="module")
def control(world):
    return run_crawl(world.network, world.all_targets, label="control")


def _run_study(world, targets, **kwargs):
    return run_study(
        world.network,
        targets,
        world.vendor_knowledge(),
        easylist_text=world.easylist_text,
        easyprivacy_text=world.easyprivacy_text,
        disconnect=world.disconnect,
        ubo_extra_text=world.ubo_extra_text,
        dns=world.network.dns,
        include_adblock_crawls=False,
        **kwargs,
    )


def test_bench_streaming_equals_batch(benchmark, bench_json, control):
    detector = FingerprintDetector()

    def batch():
        outcomes = detector.detect_all(control.successful())
        populations = control.populations()
        return (
            outcomes,
            cluster_canvases(outcomes, populations),
            compute_prevalence(control, outcomes),
            render_twice_fraction(outcomes),
            analyze_serving_context(outcomes, populations, dns=None),
        )

    def stream():
        bundle = BundleSpec(include_serving=True).build()
        bundle.ingest_many(control.observations)
        return tuple(
            bundle.finalize_member(member)
            for member in ("detection", "cluster", "prevalence", "render_twice", "serving")
        )

    def best_of(fn, rounds=3):
        seconds = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            seconds.append(time.perf_counter() - t0)
        return min(seconds)

    batch_result = batch()
    streamed = benchmark.pedantic(stream, rounds=3, iterations=1)
    assert streamed == batch_result

    # Best-of-N on both sides: the ratio is the metric, so shield it from
    # one-off GC pauses that would poison the regression gate.
    batch_seconds = best_of(batch)
    streaming_seconds = best_of(stream)
    speedup = batch_seconds / max(streaming_seconds, 1e-9)

    bench_json(
        "analysis",
        "streaming_equivalence",
        sites=len(control.observations),
        batch_seconds=batch_seconds,
        streaming_seconds=streaming_seconds,
        speedup=speedup,
    )
    print()
    print(
        f"batch {batch_seconds:.3f}s vs streaming {streaming_seconds:.3f}s "
        f"over {len(control.observations)} sites ({speedup:.2f}x)"
    )


def test_bench_streaming_memory(bench_json, control, tmp_path):
    path = tmp_path / "crawl.jsonl.gz"
    save_dataset(control, path)
    detector = FingerprintDetector()

    tracemalloc.start()
    dataset = load_dataset(path)
    outcomes = detector.detect_all(dataset.successful())
    slurped = compute_prevalence(dataset, outcomes)
    _, slurp_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del dataset, outcomes

    tracemalloc.start()
    bundle = streaming_bundle_spec().build()
    for observation in iter_observations(path):
        bundle.ingest(observation)
    streamed = bundle.finalize_member("prevalence")
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert streamed == slurped
    memory_ratio = slurp_peak / max(stream_peak, 1)
    bench_json(
        "analysis",
        "streaming_memory",
        slurp_peak_bytes=slurp_peak,
        stream_peak_bytes=stream_peak,
        memory_ratio=memory_ratio,
    )
    print()
    print(
        f"slurp peak {slurp_peak / 1e6:.1f}MB vs streaming peak "
        f"{stream_peak / 1e6:.1f}MB ({memory_ratio:.1f}x)"
    )


def test_bench_incremental_append(bench_json):
    world = _fresh_world()
    targets = world.all_targets
    base = (len(targets) * 4) // 5
    stages = ["prevalence", "reach"]

    cold = _run_study(
        world, targets, stages=stages, cache_dir=Path(tempfile.mkdtemp()) / "cache"
    )
    reduce_cold = next(t.seconds for t in cold.stage_timings if t.name == "reduce")

    cache_dir = Path(tempfile.mkdtemp()) / "cache"
    _run_study(world, targets[:base], stages=stages, cache_dir=cache_dir)
    before = obs.METRICS.snapshot()["counters"]
    grown = _run_study(world, targets, stages=stages, cache_dir=cache_dir)
    after = obs.METRICS.snapshot()["counters"]

    assert grown.prevalence == cold.prevalence and grown.reach == cold.reach
    reduce_delta = next(t.seconds for t in grown.stage_timings if t.name == "reduce")
    hits = after.get("analysis.block.hits", 0) - before.get("analysis.block.hits", 0)
    misses = after.get("analysis.block.misses", 0) - before.get("analysis.block.misses", 0)
    ingested = after.get("analysis.ingest.sites", 0) - before.get("analysis.ingest.sites", 0)
    speedup = len(targets) / max(ingested, 1)
    hit_rate = hits / max(hits + misses, 1)

    bench_json(
        "analysis",
        "incremental_append",
        sites=len(targets),
        appended=len(targets) - base,
        reingested=ingested,
        cold_reduce_seconds=reduce_cold,
        delta_reduce_seconds=reduce_delta,
        speedup=speedup,
        hit_rates={"reduce.block": {"hits": hits, "misses": misses, "hit_rate": hit_rate}},
    )
    print()
    print(
        f"append {len(targets) - base} of {len(targets)} sites: "
        f"{ingested:.0f} sites re-ingested ({speedup:.1f}x less analysis work), "
        f"block hit rate {hit_rate:.0%}; reduce stage "
        f"{reduce_delta:.3f}s warm vs {reduce_cold:.3f}s cold"
    )
