"""Benchmark: §4.1 prevalence + §3.2 detection-yield regeneration."""

from repro.core.detection import FingerprintDetector
from repro.core.prevalence import compute_prevalence
from repro.experiments import run_experiment


def test_bench_prevalence(benchmark, study):
    detector = FingerprintDetector()

    def regenerate():
        outcomes = detector.detect_all(study.control.successful())
        return compute_prevalence(study.control, outcomes)

    report = benchmark(regenerate)
    print()
    print(run_experiment("prevalence", study))
    assert 0.05 < report.top.prevalence < 0.2


def test_bench_detection_yield(benchmark, study):
    detector = FingerprintDetector()
    observations = study.control.successful()

    def regenerate():
        outcomes = detector.detect_all(observations)
        return FingerprintDetector.fingerprintable_fraction(outcomes.values())

    fraction = benchmark(regenerate)
    print()
    print(run_experiment("detection", study))
    assert 0.6 < fraction < 1.0
