"""Benchmark: the staged pipeline — end-to-end wall time, per-stage
timings, and the cold-vs-warm stage-cache speedup.

A cold run executes every stage and populates the content-addressed cache;
a warm run over the same world must resolve every stage from cache, perform
zero page loads, and return an identical :class:`StudyResult`.  The warm/
cold ratio is the payoff of content-addressed caching; the per-stage table
shows where the cold time goes (the crawls dominate, by design).
"""

import os
import tempfile
from pathlib import Path

from repro.config import StudyScale
from repro.webgen import build_world


def _fresh_world():
    fraction = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
    return build_world(StudyScale(fraction=fraction))


def test_bench_pipeline_cold_vs_warm(benchmark, bench_json):
    cache_dir = Path(tempfile.mkdtemp()) / "stage-cache"

    import time

    t0 = time.perf_counter()
    cold = _fresh_world().run_full_study(jobs=2, cache_dir=cache_dir)
    cold_seconds = time.perf_counter() - t0
    assert all(not t.cached for t in cold.stage_timings)

    def warm_run():
        return _fresh_world().run_full_study(jobs=2, cache_dir=cache_dir)

    warm = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    assert all(t.cached for t in warm.stage_timings)
    assert warm == cold

    warm_seconds = sum(t.seconds for t in warm.stage_timings)
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    assert speedup > 2, f"warm cache should be much faster (got {speedup:.1f}x)"

    bench_json(
        "pipeline",
        "cold_vs_warm",
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        speedup=speedup,
        stages={t.name: t.seconds for t in cold.stage_timings},
        render_cache={
            layer: {k: row.get(k, 0.0) for k in ("hits", "misses", "hit_rate", "saved_seconds")}
            for layer, row in cold.perf_counters.items()
        },
    )

    print()
    print(f"cold end-to-end: {cold_seconds:.2f}s; warm stages: {warm_seconds:.3f}s "
          f"({speedup:.0f}x speedup)")
    print(f"{'stage':18s} {'cold':>9s} {'warm':>9s}")
    warm_by_name = {t.name: t for t in warm.stage_timings}
    for t in cold.stage_timings:
        w = warm_by_name.get(t.name)
        print(f"{t.name:18s} {t.seconds:8.3f}s {w.seconds if w else 0.0:8.3f}s")


def test_bench_pipeline_serial_vs_parallel(benchmark, bench_json):
    """End-to-end study wall time with sharded parallel crawls."""
    result = benchmark.pedantic(
        lambda: _fresh_world().run_full_study(jobs=4), rounds=1, iterations=1
    )
    crawl_seconds = sum(
        t.seconds for t in result.stage_timings if t.name.startswith("crawl.")
    )
    total_seconds = sum(t.seconds for t in result.stage_timings)
    bench_json(
        "pipeline",
        "parallel_crawl",
        total_seconds=total_seconds,
        crawl_seconds=crawl_seconds,
        stages={t.name: t.seconds for t in result.stage_timings},
    )
    print()
    print(f"stages total {total_seconds:.2f}s, crawls {crawl_seconds:.2f}s "
          f"({crawl_seconds / max(total_seconds, 1e-9):.0%} of pipeline)")
    for t in result.stage_timings:
        print(f"  {t.name:18s} {t.seconds:8.3f}s")
    assert result.prevalence is not None
