"""Benchmark: the static script analyzer and crawl-time triage.

Three benchmarks, one contract each:

``static_analyze_vendors``
    Wall time to produce a :class:`StaticVerdict` for the full 13-script
    vendor corpus — a cold verdict cache (CFG + dataflow + taint for every
    script) vs a warm one (digest lookup in the ``js.static`` byte-budget
    LRU).  Every page that ships a known vendor script re-asks the same
    question, so the warm path is the steady-state crawl cost.  Like the
    JS script cache, the raw ratio is far past the contract, so the gated
    ``speedup`` is capped and ``raw_speedup`` keeps the uncapped number.

``static_triage_crawl``
    The end-to-end win: full ``Browser.load`` page loads over pages
    carrying a compute-heavy but provably inert script, triage on vs off.
    With triage on, the analyzer proves the script canvas-inert and
    effect-free once (then hits the verdict cache on every later page) and
    the engine never executes it; with triage off every page pays the
    execution.  Datasets are byte-identical either way — the speedup is
    the whole point of the verdict.

``static_verdict_cache``
    Hit rate of the ``js.static`` verdict cache across a triage-on crawl
    where every page ships the same scripts — deterministic for a fixed
    page set, so the committed baseline gates it.

All gated metrics are ratios of same-session runs on the same machine,
capped at their contract values; raw wall seconds are recorded for
inspection but never gated.
"""

import time

from repro import perf
from repro.browser.browser import Browser
from repro.js.static import verdict_for_source
from repro.js.static.verdict import _VERDICT_CACHE
from repro.net.server import Network
from repro.webgen.vendors import VENDOR_SPECS

ROUNDS = 3

#: Compute-heavy inert script: big enough that skipping it pays, small
#: enough that the analyzer's termination proof still covers it.
HEAVY_INERT = """
var __acc = 0;
for (var i = 0; i < 4000; i++) { __acc = (__acc * 31 + i) % 1000003; }
for (var j = 0; j < 4000; j++) { __acc = (__acc + j * 7) % 1000003; }
var __digest = JSON.stringify({acc: __acc});
"""

FP_SCRIPT = """
var c = document.createElement('canvas');
c.width = 220; c.height = 40;
var g = c.getContext('2d');
g.font = '13px Arial';
g.fillText('bench probe', 3, 20);
window.__fp = c.toDataURL();
"""

PAGES = 30


def _best(fn, rounds=ROUNDS):
    return min(fn() for _ in range(rounds))


def _vendor_sources():
    return [
        spec.source("customer.example") if spec.per_site else spec.source()
        for spec in VENDOR_SPECS
    ]


def _triage_network(pages=PAGES):
    net = Network()
    html = (
        f"<html><title>b</title><script>{HEAVY_INERT}</script>"
        f"<script>{FP_SCRIPT}</script></html>"
    )
    for i in range(pages):
        net.server_for(f"bench-{i}.example").add_resource("/", html)
    return net


def test_bench_static_analyze_vendors(bench_json):
    sources = _vendor_sources()
    reps = 10

    def analyze_seconds(warm):
        def once():
            started = time.perf_counter()
            for _ in range(reps):
                if not warm:
                    _VERDICT_CACHE.clear()
                for i, source in enumerate(sources):
                    verdict_for_source(source, f"https://vendor{i}.example/fp.js")
            return (time.perf_counter() - started) / reps

        return _best(once)

    warm = analyze_seconds(True)
    cold = analyze_seconds(False)
    speedup = cold / warm

    classes = {
        verdict_for_source(s).classification for s in sources
    }
    assert classes == {"fingerprinting-likely"}, classes

    print(f"\nstatic analysis, {len(sources)}-script vendor corpus:")
    print(f"  cold (CFG+dataflow+taint): {cold * 1000:8.3f} ms")
    print(f"  warm (verdict cache hit):  {warm * 1000:8.3f} ms")
    print(f"  warm-cache speedup:        {speedup:8.1f}x")
    bench_json(
        "static",
        "static_analyze_vendors",
        speedup=min(speedup, 50.0),
        raw_speedup=speedup,
        cold_ms=cold * 1000,
        warm_ms=warm * 1000,
        scripts=len(sources),
    )
    assert speedup >= 3.0, f"warm verdict cache only {speedup:.1f}x faster than cold"


def test_bench_static_triage_crawl(bench_json):
    net = _triage_network()
    urls = [f"https://bench-{i}.example/" for i in range(PAGES)]

    def crawl_seconds(static_triage):
        def once():
            started = time.perf_counter()
            for url in urls:
                Browser(net, static_triage=static_triage).load(url)
            return time.perf_counter() - started

        return _best(once)

    verdict_for_source(HEAVY_INERT)  # steady state: verdict already cached
    on = crawl_seconds(True)
    off = crawl_seconds(False)
    speedup = off / on

    # Triage is only admissible because the data cannot change: spot-check.
    sample_on = Browser(net, static_triage=True).load(urls[0])
    sample_off = Browser(net, static_triage=False).load(urls[0])
    assert sample_on.executed_scripts == sample_off.executed_scripts
    assert sample_on.script_sources == sample_off.script_sources
    assert len(sample_on.skipped_scripts) == 1

    print(f"\nend-to-end page loads, {PAGES} pages with a heavy inert script:")
    print(f"  triage off: {off * 1000:8.1f} ms")
    print(f"  triage on:  {on * 1000:8.1f} ms")
    print(f"  speedup:    {speedup:8.2f}x")
    bench_json(
        "static",
        "static_triage_crawl",
        speedup=min(speedup, 1.3),  # contract: skipping inert work is a real win
        raw_speedup=speedup,
        triage_off_seconds=off,
        triage_on_seconds=on,
        pages=PAGES,
    )
    assert speedup > 1.0, f"triage-on crawl slower than triage-off ({speedup:.2f}x)"


def test_bench_static_verdict_cache(bench_json):
    net = _triage_network()
    urls = [f"https://bench-{i}.example/" for i in range(PAGES)]
    verdict_for_source(HEAVY_INERT)
    verdict_for_source(FP_SCRIPT)

    before = perf.PERF.snapshot()
    for url in urls:
        Browser(net, static_triage=True).load(url)
    delta = perf.diff_snapshots(before, perf.PERF.snapshot())

    row = delta.get("js.static", {})
    lookups = row.get("hits", 0.0) + row.get("misses", 0.0)
    hit_rate = row.get("hits", 0.0) / lookups if lookups else 0.0
    triage = delta.get("js.static.triage", {})

    print(f"\nverdict cache over {PAGES} triage-on page loads:")
    print(f"  lookups: {int(lookups)}, hit rate: {hit_rate:.1%}")
    print(
        f"  triage: {int(triage.get('hits', 0))} deferred, "
        f"{int(triage.get('misses', 0))} executed, "
        f"{int(triage.get('evictions', 0))} flushed"
    )
    bench_json(
        "static",
        "static_verdict_cache",
        hit_rates={"js.static": {"hit_rate": hit_rate}},
        lookups=lookups,
        deferred=triage.get("hits", 0.0),
        executed=triage.get("misses", 0.0),
    )
    assert hit_rate >= 0.9, f"verdict cache hit rate only {hit_rate:.1%}"
