"""Ablation benchmarks for the methodology's design choices.

Each ablation removes one ingredient of the paper's method and measures the
damage, quantifying *why* the paper does what it does:

* drop each §3.2 detection filter -> false-positive prevalence inflation;
* attribute by script-URL pattern only (no canvas clustering) -> the
  coverage the paper's core clustering idea adds;
* remove the ad blockers' first-party exception -> how much of the §5.2
  evasion story is that single exception.
"""

from repro.blocklists import RuleMatcher
from repro.browser import AdBlockerExtension, BrowserProfile
from repro.core.attribution import VendorAttributor, VendorSignature
from repro.core.detection import FingerprintDetector
from repro.core.records import ANIMATION_METHODS
from repro.crawler import run_crawl


class _NoSizeFilterDetector(FingerprintDetector):
    def __init__(self):
        super().__init__(min_size=0)


class _NoAnimationFilterDetector(FingerprintDetector):
    def detect(self, observation):
        stripped = type(observation)(
            domain=observation.domain,
            rank=observation.rank,
            population=observation.population,
            success=observation.success,
            calls=[c for c in observation.calls if c.method not in ANIMATION_METHODS],
            extractions=observation.extractions,
        )
        return super().detect(stripped)


class _NoLossyFilterDetector(FingerprintDetector):
    def classify_extraction(self, extraction, animation_scripts):
        reason = super().classify_extraction(extraction, animation_scripts)
        from repro.core.detection import ExclusionReason

        if reason is ExclusionReason.LOSSY_FORMAT:
            # Pretend lossy formats were acceptable; re-check other filters.
            if extraction.width < self.min_size or extraction.height < self.min_size:
                return ExclusionReason.TOO_SMALL
            if extraction.script_url in animation_scripts:
                return ExclusionReason.ANIMATION_SCRIPT
            return None
        return reason


def _fp_sites(detector, dataset, population):
    outcomes = detector.detect_all(dataset.successful(population))
    return sum(1 for o in outcomes.values() if o.is_fingerprinting_site)


def test_bench_ablate_detection_filters(benchmark, study):
    """Each filter matters: removing any inflates measured prevalence."""
    dataset = study.control
    full = FingerprintDetector()

    def measure_all():
        return {
            "full": _fp_sites(full, dataset, "top"),
            "no-lossy": _fp_sites(_NoLossyFilterDetector(), dataset, "top"),
            "no-size": _fp_sites(_NoSizeFilterDetector(), dataset, "top"),
            "no-animation": _fp_sites(_NoAnimationFilterDetector(), dataset, "top"),
        }

    counts = benchmark(measure_all)
    print()
    print("Detection-filter ablation (top-population FP sites):")
    for name, count in counts.items():
        print(f"  {name:14s} {count}")
    assert counts["no-lossy"] > counts["full"]       # webp checks leak in
    assert counts["no-size"] > counts["full"]        # small canvases leak in
    assert counts["no-animation"] > counts["full"]   # image tools leak in


def test_bench_ablate_canvas_clustering(benchmark, study):
    """Attribution by script pattern alone misses bundled/cloaked deployments;
    canvas clustering is what closes the gap (the paper's core idea)."""
    pattern_only = VendorAttributor(
        [
            VendorSignature(
                name=s.name,
                security=s.security,
                canvas_hashes=set(),           # ablated: no canvas knowledge
                script_pattern=s.script_pattern,
                url_regex=s.url_regex,
            )
            for s in study.signatures
        ]
    )
    full = VendorAttributor(study.signatures)
    observations = study.control.by_domain()

    def attribute_both():
        with_canvas = full.attribute_all(observations, study.outcomes)
        without = pattern_only.attribute_all(observations, study.outcomes)
        return (
            sum(1 for a in with_canvas.values() if a.vendors),
            sum(1 for a in without.values() if a.vendors),
        )

    with_canvas, without_canvas = benchmark(attribute_both)
    print()
    print(f"Attributed FP sites with canvas clustering: {with_canvas}")
    print(f"Attributed FP sites with script patterns only: {without_canvas}")
    coverage_gain = with_canvas / max(1, without_canvas)
    print(f"Coverage gain from clustering: {coverage_gain:.2f}x")
    assert with_canvas > without_canvas  # clustering must add coverage


def test_bench_ablate_first_party_exception(benchmark, world, study):
    """Counterfactual: an ad blocker that ignores the first-party exception
    blocks dramatically more fingerprinting (paper §5.2's mechanism)."""
    easylist = RuleMatcher.from_text(world.easylist_text, "easylist")
    targets = world.all_targets[: max(200, len(world.all_targets) // 5)]
    detector = FingerprintDetector()

    def crawl_with(honor_exception: bool) -> int:
        blocker = AdBlockerExtension(
            "abp", [easylist], honor_first_party_exception=honor_exception
        )
        dataset = run_crawl(
            world.network, targets, BrowserProfile(extensions=(blocker,)), label="ablate"
        )
        outcomes = detector.detect_all(dataset.successful())
        return sum(len(o.fingerprintable) for o in outcomes.values())

    def run_counterfactual():
        return crawl_with(True), crawl_with(False)

    normal, strict = benchmark.pedantic(run_counterfactual, rounds=1, iterations=1)
    print()
    print(f"Canvases with standard blocker (first-party exception honored): {normal}")
    print(f"Canvases with strict blocker (exception removed):               {strict}")
    # Removing the exception must block at least as much, typically more —
    # e.g. every Akamai deployment becomes blockable.
    assert strict <= normal


def test_bench_ablate_homepage_only_crawl(benchmark, world):
    """The paper's homepage-only crawl is a lower bound on prevalence
    (§3.2 Limitations): following /login pages finds strictly more."""
    from repro.crawler import run_crawl

    targets = world.all_targets[: max(300, len(world.all_targets) // 4)]
    detector = FingerprintDetector()

    def fp_count(inner_paths=()):
        dataset = run_crawl(world.network, targets, label="bound", inner_paths=inner_paths)
        outcomes = detector.detect_all(dataset.successful())
        return sum(1 for o in outcomes.values() if o.is_fingerprinting_site)

    def run_both():
        return fp_count(), fp_count(("/login",))

    homepage_only, with_login = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(f"FP sites, homepage-only crawl: {homepage_only}")
    print(f"FP sites, homepage + /login:   {with_login}")
    assert with_login >= homepage_only
