"""Benchmark: the §4.1 headline numbers survive transient network faults.

A fault-free control crawl establishes the ground truth. The same world is
then crawled through a :class:`FaultyNetwork` that afflicts ~12% of URLs
with connection errors, 503 flaps, slow responses and truncated scripts.
With retries and a page watchdog on, the measured success set — and
therefore the §4.1 prevalence — must be *identical* to the fault-free run;
with retries off, coverage must measurably degrade. This is the robustness
contract that lets the reproduction (and a real crawl) trust its numbers.
"""

from repro.core.detection import FingerprintDetector
from repro.core.prevalence import compute_prevalence
from repro.crawler import PageBudget, RetryPolicy, run_crawl
from repro.net.faults import FaultConfig, FaultyNetwork

FAULTS = FaultConfig(fault_rate=0.12, max_consecutive=2)

# Worst-case recovery needs 1 + 2*max_consecutive attempts: a faulty
# document blocks script fetches, so document faults and script faults can
# only clear sequentially before the clean load.
RETRIES = RetryPolicy(max_attempts=5)
BUDGET = PageBudget(max_page_ms=90_000.0)


def _prevalence(dataset):
    outcomes = FingerprintDetector().detect_all(dataset.successful())
    return compute_prevalence(dataset, outcomes)


def test_bench_prevalence_stable_under_faults(benchmark, world):
    clean = run_crawl(world.network, world.all_targets, label="clean")

    def crawl_with_faults():
        # Fresh wrapper per round: fault state (attempt counters) must not
        # leak across benchmark iterations.
        faulty = FaultyNetwork(world.network, FAULTS, seed=world.scale.seed)
        dataset = run_crawl(
            faulty,
            world.all_targets,
            label="faulty",
            retry_policy=RETRIES,
            page_budget=BUDGET,
        )
        return dataset, faulty.injector.total_injected()

    recovered, injected = benchmark.pedantic(crawl_with_faults, rounds=1, iterations=1)

    clean_ok = {o.domain for o in clean.observations if o.success}
    recovered_ok = {o.domain for o in recovered.observations if o.success}
    assert injected > 0
    assert recovered_ok == clean_ok  # every transient fault was ridden out
    assert recovered.recovered_count() > 0

    clean_prev = _prevalence(clean)
    faulty_prev = _prevalence(recovered)
    assert faulty_prev.top.fp_sites == clean_prev.top.fp_sites
    assert faulty_prev.tail.fp_sites == clean_prev.tail.fp_sites

    print()
    print("Fault-free crawl:")
    print(clean.health().summary())
    print("Faulty crawl, retries on:")
    print(recovered.health().summary())


def test_bench_retries_off_degrades_coverage(benchmark, world):
    clean = run_crawl(world.network, world.all_targets, label="clean")
    clean_ok = {o.domain for o in clean.observations if o.success}

    def crawl_without_retries():
        faulty = FaultyNetwork(world.network, FAULTS, seed=world.scale.seed)
        return run_crawl(
            faulty,
            world.all_targets,
            label="no-retries",
            page_budget=BUDGET,
        )

    fragile = benchmark.pedantic(crawl_without_retries, rounds=1, iterations=1)
    fragile_ok = {o.domain for o in fragile.observations if o.success}

    assert fragile_ok < clean_ok  # strictly worse coverage
    lost = len(clean_ok) - len(fragile_ok)
    print()
    print(f"Retries off: lost {lost}/{len(clean_ok)} successful sites to faults")
    print(fragile.health().summary())
