"""Benchmark: §3.1 cross-machine validation (Intel/Ubuntu vs Apple M1)."""

from repro.core.pipeline import validate_cross_machine
from repro.experiments import run_experiment


def test_bench_cross_machine(benchmark, world, study):
    targets = world.all_targets[:100]

    consistent = benchmark.pedantic(
        validate_cross_machine, args=(world.network, targets), rounds=1, iterations=1
    )
    print()
    print(run_experiment("cross_machine", study))
    assert consistent is True
