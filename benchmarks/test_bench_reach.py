"""Benchmark: §4.2 reach and top/tail overlap regeneration."""

from repro.core.reach import compute_reach
from repro.experiments import run_experiment


def test_bench_reach(benchmark, study):
    fp = study.fp_sites

    def regenerate():
        return compute_reach(
            study.clusters, fp["top"], fp["tail"], study.prevalence.top.sites_successful
        )

    report = benchmark(regenerate)
    print()
    print(run_experiment("reach", study))
    assert report.unique_canvases_top > 0
    assert 0.0 < report.top6_share_top <= 1.0
