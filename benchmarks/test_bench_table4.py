"""Benchmark: Table 4 — blocklist coverage of test canvases (§5.1)."""

from repro.blocklists import RuleMatcher
from repro.core.context import analyze_blocklist_context
from repro.experiments import run_experiment


def test_bench_table4(benchmark, world, study):
    easylist = RuleMatcher.from_text(world.easylist_text, "easylist")
    easyprivacy = RuleMatcher.from_text(world.easyprivacy_text, "easyprivacy")

    def regenerate():
        return analyze_blocklist_context(
            study.outcomes, study.populations, easylist, easyprivacy, world.disconnect
        )

    context = benchmark(regenerate)
    print()
    print(run_experiment("table4", study))

    # Set-algebra invariants of the table.
    assert context.all_lists.top <= min(
        context.easylist.top, context.easyprivacy.top, context.disconnect.top
    )
    assert context.any_list.top >= max(
        context.easylist.top, context.easyprivacy.top, context.disconnect.top
    )
    # A sizable share of canvases comes from listed scripts (paper: 45%/37%).
    frac_top, _ = context.any_list.fraction(context.totals)
    assert frac_top > 0.15
