"""Benchmark: cost of the sampling profiler on a sharded study.

Three configurations run the same study (``jobs=2``, so the sampler also
runs inside forked shard workers and its snapshots cross the worker
payload channel):

``off``
    The shipped default — ``REPRO_OBS_PROFILE=0``, hot paths pay one
    module-attribute load and one branch.
``hz19``
    The default sampling rate (19 Hz).  The tentpole contract is that
    this is within 5% of ``off`` end to end.
``hz97``
    A high-resolution rate (97 Hz) — reported so the cost curve of
    raising ``REPRO_OBS_PROFILE_HZ`` stays visible run over run.

As with the obs bench, the committed baseline gates a *ratio*, not wall
seconds.  A sharded study on a small or busy runner is noisy (three
processes contending for the cores), so the statistic is the **minimum
round-local ratio**: each round times off and profiled back to back, the
per-round ratio cancels machine drift, and the min over rounds is the
tightest observable upper bound on the true overhead.  CI holds it to
``--max-regression 0.05`` where raw seconds never could be.
"""

import os
import time

from repro import obs
from repro.config import StudyScale
from repro.obs.config import ObsConfig
from repro.webgen import build_world

ROUNDS = 4
JOBS = 2


def _profiler_scale() -> float:
    # Twelve timed sharded studies per session: use a slice of the session
    # bench scale so the suite stays under a couple of minutes.
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05")) * 0.4


def _timed(world):
    started = time.perf_counter()
    result = world.run_full_study(jobs=JOBS, include_adblock_crawls=False)
    return time.perf_counter() - started, result


def test_bench_profiler_overhead(bench_json):
    world = build_world(StudyScale(fraction=_profiler_scale()))
    previous = obs.config()
    world.run_full_study(jobs=JOBS, include_adblock_crawls=False)  # warm caches

    times = {"off": [], "hz19": [], "hz97": []}
    samples = {"hz19": 0, "hz97": 0}
    try:
        for _ in range(ROUNDS):  # interleave modes so drift hits all three alike
            obs.configure(ObsConfig(profile=False))
            obs.reset()
            seconds, _ = _timed(world)
            times["off"].append(seconds)
            for name, hz in (("hz19", 19.0), ("hz97", 97.0)):
                obs.configure(ObsConfig(profile=True, profile_hz=hz))
                obs.reset()
                seconds, result = _timed(world)
                times[name].append(seconds)
                samples[name] = max(samples[name], int(result.profile.get("samples", 0)))
    finally:
        obs.reset()
        obs.configure(previous)

    off = min(times["off"])
    hz19 = min(times["hz19"])
    hz97 = min(times["hz97"])
    # Round-local ratios: profiled and unprofiled runs from the same round
    # saw the same machine conditions, so their ratio is far more stable
    # than min-vs-min across an oversubscribed session.
    hz19_ratio = min(p / o for p, o in zip(times["hz19"], times["off"]))
    hz97_ratio = min(p / o for p, o in zip(times["hz97"], times["off"]))
    hz19_overhead = hz19_ratio - 1.0
    hz97_overhead = hz97_ratio - 1.0

    # The tentpole contract: sampling at the default rate costs <5% on the
    # end-to-end sharded pipeline.
    assert hz19_ratio <= 1.05, (
        f"default-rate profiling overhead {hz19_overhead:.1%} exceeds 5% "
        f"(per-round off {times['off']}, 19 Hz {times['hz19']})"
    )

    bench_json(
        "profiler",
        "study_overhead",
        off_seconds=off,
        hz19_seconds=hz19,
        hz97_seconds=hz97,
        hz19_overhead=hz19_overhead,
        hz97_overhead=hz97_overhead,
        hz19_samples=samples["hz19"],
        hz97_samples=samples["hz97"],
        # check_regression gates on "speedup": 1/ratio drifts below 0.95
        # exactly when default-rate profiling crosses the 5% line.  Capped
        # at 1.0 — rounds where profiling "wins" are timer noise and would
        # otherwise tighten the committed baseline's floor.
        speedup=min(1.0, 1.0 / hz19_ratio),
    )

    print()
    print(
        f"profiler off {off:.3f}s | 19 Hz {hz19:.3f}s ({hz19_overhead:+.1%}, "
        f"{samples['hz19']} samples) | 97 Hz {hz97:.3f}s ({hz97_overhead:+.1%}, "
        f"{samples['hz97']} samples)"
    )
