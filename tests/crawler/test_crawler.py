"""Tests for the crawler: collection, consent, behavior, storage."""

import pytest

from repro.browser import Browser
from repro.crawler import (
    CanvasCollector,
    CrawlTarget,
    load_dataset,
    run_crawl,
    save_dataset,
)
from repro.net.server import Network

FP_SCRIPT = """
var c = document.createElement('canvas');
c.width = 200; c.height = 40;
var g = c.getContext('2d');
g.font = '13px Arial';
g.fillText('collector probe text', 3, 20);
window.__fp = c.toDataURL();
"""


@pytest.fixture
def network():
    net = Network()
    plain = net.server_for("plain.example")
    plain.add_resource("/", f"<html><title>P</title><script>{FP_SCRIPT}</script></html>")

    gated = net.server_for("gated.example")
    gated.add_resource(
        "/",
        '<html><div class="consent-banner"><button class="consent-accept">OK</button></div>'
        f'<script data-consent="required">{FP_SCRIPT}</script></html>',
    )

    lazy = net.server_for("lazy.example")
    lazy.add_resource("/", f'<html><script data-trigger="scroll">{FP_SCRIPT}</script></html>')

    blocked = net.server_for("blocked.example")
    blocked.add_resource("/", "denied", status=403)
    return net


class TestCollector:
    def test_collect_success(self, network):
        collector = CanvasCollector(Browser(network))
        obs = collector.collect("plain.example", rank=5, population="top")
        assert obs.success
        assert obs.domain == "plain.example"
        assert obs.rank == 5
        assert len(obs.extractions) == 1
        assert obs.extractions[0].mime == "image/png"

    def test_collect_bot_blocked(self, network):
        collector = CanvasCollector(Browser(network))
        obs = collector.collect("blocked.example", rank=1, population="top")
        assert not obs.success
        assert obs.failure_reason == "bot-blocked"
        assert obs.extractions == []

    def test_collect_network_error(self, network):
        collector = CanvasCollector(Browser(network))
        obs = collector.collect("nxdomain.example", rank=1, population="top")
        assert not obs.success
        assert obs.failure_reason == "network-error"

    def test_autoconsent_runs_gated_fingerprinting(self, network):
        collector = CanvasCollector(Browser(network))
        obs = collector.collect("gated.example", rank=1, population="top")
        assert obs.success
        assert len(obs.extractions) == 1  # ran only because autoconsent opted in
        assert collector.autoconsent.banners_handled == 1

    def test_scroll_behavior_runs_lazy_fingerprinting(self, network):
        collector = CanvasCollector(Browser(network))
        obs = collector.collect("lazy.example", rank=1, population="top")
        assert len(obs.extractions) == 1
        # The settle wait pushes the clock forward 5s after the scroll.
        assert obs.extractions[-1].t_ms < 5000.0

    def test_script_sources_recorded(self, network):
        collector = CanvasCollector(Browser(network))
        obs = collector.collect("plain.example", rank=1, population="top")
        assert any("collector probe text" in src for src in obs.script_sources.values())


class TestRunCrawl:
    def test_crawl_over_targets(self, network):
        targets = [
            CrawlTarget("plain.example", 1, "top"),
            CrawlTarget("blocked.example", 2, "top"),
            CrawlTarget("gated.example", 20025, "tail"),
        ]
        dataset = run_crawl(network, targets, label="test")
        assert dataset.label == "test"
        assert len(dataset.observations) == 3
        assert dataset.success_count("top") == 1
        assert dataset.success_count("tail") == 1
        assert dataset.failure_reasons() == {"bot-blocked": 1}

    def test_progress_callback(self, network):
        seen = []
        run_crawl(
            network,
            [CrawlTarget("plain.example", 1, "top")],
            progress=lambda i, obs: seen.append((i, obs.domain)),
        )
        assert seen == [(0, "plain.example")]

    def test_populations_mapping(self, network):
        targets = [CrawlTarget("plain.example", 1, "top"), CrawlTarget("gated.example", 2, "tail")]
        dataset = run_crawl(network, targets)
        assert dataset.populations() == {"plain.example": "top", "gated.example": "tail"}


class TestStorage:
    def test_roundtrip(self, network, tmp_path):
        targets = [CrawlTarget("plain.example", 1, "top"), CrawlTarget("blocked.example", 2, "top")]
        dataset = run_crawl(network, targets, label="persist")
        path = tmp_path / "crawl.jsonl"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.label == "persist"
        assert len(loaded.observations) == 2
        original = dataset.by_domain()["plain.example"]
        restored = loaded.by_domain()["plain.example"]
        assert restored.extractions[0].data_url == original.extractions[0].data_url
        assert restored.extractions[0].canvas_hash == original.extractions[0].canvas_hash
        assert [c.method for c in restored.calls] == [c.method for c in original.calls]

    def test_gzip_roundtrip(self, network, tmp_path):
        dataset = run_crawl(network, [CrawlTarget("plain.example", 1, "top")], label="gz")
        path = tmp_path / "crawl.jsonl.gz"
        save_dataset(dataset, path)
        assert load_dataset(path).observations[0].domain == "plain.example"

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            list(__import__("repro.crawler.storage", fromlist=["iter_observations"]).iter_observations(path))
