"""Tests for the crawl resilience layer: retry policy, watchdog, crash
isolation, and end-to-end fault recovery."""

import pytest

from repro.browser.browser import Browser, Page
from repro.browser.instrumentation import VirtualClock
from repro.config import StudyScale
from repro.core.records import SiteObservation
from repro.crawler.collector import CanvasCollector
from repro.crawler.crawl import CrawlTarget, run_crawl
from repro.crawler.resilience import (
    PageBudget,
    RetryPolicy,
    collect_with_retries,
    is_transient,
)
from repro.net.faults import FaultConfig, FaultyNetwork
from repro.net.server import Network
from repro.net.url import URL
from repro.webgen import build_world

FP_SCRIPT = """
var c = document.createElement('canvas');
c.width = 200; c.height = 40;
var g = c.getContext('2d');
g.font = '13px Arial';
g.fillText('resilience probe text', 3, 20);
window.__fp = c.toDataURL();
"""


def make_network():
    net = Network()
    plain = net.server_for("plain.example")
    plain.add_resource(
        "/", '<html><title>P</title><script src="/fp.js"></script></html>'
    )
    plain.add_script("/fp.js", FP_SCRIPT)
    flaky = net.server_for("flaky.example")
    flaky.add_resource("/", f"<html><script>{FP_SCRIPT}</script></html>")
    return net


class TestFailureClassification:
    @pytest.mark.parametrize(
        "reason",
        ["network-error", "timeout", "server-error-503", "server-error-500",
         "truncated-script", "subresource-error"],
    )
    def test_transient_reasons(self, reason):
        assert is_transient(reason)

    @pytest.mark.parametrize(
        "reason", ["bot-blocked", "not-found", "http-410", "crash:ValueError", None]
    )
    def test_permanent_reasons(self, reason):
        assert not is_transient(reason)


class TestRetryPolicy:
    def test_backoff_sequence_without_jitter(self):
        policy = RetryPolicy(max_attempts=4, base_delay_ms=500, backoff_factor=2.0,
                             jitter_fraction=0.0)
        assert policy.backoff_schedule() == [500.0, 1000.0, 2000.0]

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(max_attempts=5, base_delay_ms=10_000, backoff_factor=10.0,
                             max_delay_ms=15_000, jitter_fraction=0.0)
        assert policy.backoff_schedule() == [10_000.0, 15_000.0, 15_000.0, 15_000.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=4, base_delay_ms=1000, jitter_fraction=0.25)
        first = policy.backoff_schedule(key="site.example")
        second = policy.backoff_schedule(key="site.example")
        assert first == second
        for attempt, delay in enumerate(first, start=1):
            nominal = min(1000 * 2.0 ** (attempt - 1), policy.max_delay_ms)
            assert nominal * 0.75 <= delay <= nominal * 1.25
        assert first != policy.backoff_schedule(key="other.example")

    def test_never_retries_permanent_classes(self):
        policy = RetryPolicy()
        for reason in ("bot-blocked", "not-found", "http-410", "crash:TypeError", None):
            assert not policy.is_retryable(reason)
        for reason in ("network-error", "timeout", "server-error-503", "truncated-script"):
            assert policy.is_retryable(reason)

    def test_retry_crashes_opt_in(self):
        assert RetryPolicy(retry_crashes=True).is_retryable("crash:RuntimeError")

    def test_max_attempts_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


def _schedule_in_subprocess(key):
    """Top-level worker (pickled by name): one jittered schedule for ``key``."""
    policy = RetryPolicy(max_attempts=5, base_delay_ms=1000, jitter_fraction=0.25)
    return policy.backoff_schedule(key=key)


class TestBackoffDeterminismAcrossProcesses:
    """Supervised re-dispatch replays retries in a *different* process; the
    jittered schedule must be a pure function of the key, not of interpreter
    state (hash randomization, import order, prior draws)."""

    KEYS = ["site-a.example", "site-b.example", "site-a.example/inner"]

    def test_same_key_same_schedule_in_fresh_interpreters(self):
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")  # fresh interpreter state
        local = {key: _schedule_in_subprocess(key) for key in self.KEYS}
        with ctx.Pool(2) as pool:
            remote_1 = pool.map(_schedule_in_subprocess, self.KEYS)
        with ctx.Pool(2) as pool:
            remote_2 = pool.map(_schedule_in_subprocess, self.KEYS)
        for key, first, second in zip(self.KEYS, remote_1, remote_2):
            assert first == local[key]
            assert second == local[key]

    def test_different_keys_decorrelate(self):
        schedules = [_schedule_in_subprocess(key) for key in self.KEYS]
        assert len({tuple(s) for s in schedules}) == len(schedules)

    def test_schedule_is_independent_of_prior_draws(self):
        """Interleaving other keys' draws must not shift a key's schedule."""
        policy = RetryPolicy(max_attempts=5, base_delay_ms=1000, jitter_fraction=0.25)
        clean = policy.backoff_schedule(key="site-a.example")
        policy.backoff_schedule(key="noise-1")
        policy.backoff_schedule(key="noise-2")
        assert policy.backoff_schedule(key="site-a.example") == clean


class FlakyCollector:
    """Stub collector failing a fixed number of times before succeeding."""

    def __init__(self, failures, reason="network-error"):
        self.failures = failures
        self.reason = reason
        self.calls = 0

    def collect(self, domain, rank, population):
        self.calls += 1
        if self.calls <= self.failures:
            return SiteObservation(domain=domain, rank=rank, population=population,
                                   success=False, failure_reason=self.reason)
        return SiteObservation(domain=domain, rank=rank, population=population, success=True)


TARGET = CrawlTarget("flaky.example", 1, "top")


class TestCollectWithRetries:
    def test_recovers_within_attempt_budget(self):
        collector = FlakyCollector(failures=2)
        obs = collect_with_retries(collector, TARGET, RetryPolicy(max_attempts=3))
        assert obs.success and obs.attempts == 3 and obs.recovered
        assert collector.calls == 3

    def test_attempt_cap_exhausts(self):
        collector = FlakyCollector(failures=5)
        obs = collect_with_retries(collector, TARGET, RetryPolicy(max_attempts=3))
        assert not obs.success and obs.attempts == 3
        assert collector.calls == 3

    def test_permanent_failure_not_retried(self):
        collector = FlakyCollector(failures=5, reason="bot-blocked")
        obs = collect_with_retries(collector, TARGET, RetryPolicy(max_attempts=3))
        assert not obs.success and obs.attempts == 1
        assert collector.calls == 1

    def test_no_policy_means_single_attempt(self):
        collector = FlakyCollector(failures=1)
        obs = collect_with_retries(collector, TARGET, policy=None)
        assert not obs.success and obs.attempts == 1

    def test_backoff_advances_virtual_clock(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=3, base_delay_ms=500, jitter_fraction=0.0)
        collect_with_retries(FlakyCollector(failures=2), TARGET, policy, clock=clock)
        assert clock.now_ms() == 1500.0  # 500 + 1000


class CrashingNetwork:
    """Network wrapper whose fetch raises for one host — a collector bug stand-in."""

    def __init__(self, inner, crash_host):
        self.inner = inner
        self.crash_host = crash_host

    def fetch(self, request):
        if request.url.host == self.crash_host:
            raise RuntimeError("interpreter exploded")
        return self.inner.fetch(request)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestCrashIsolation:
    def test_crash_becomes_failed_observation(self):
        network = CrashingNetwork(make_network(), "plain.example")
        collector = CanvasCollector(Browser(network))
        obs = collector.collect("plain.example", rank=1, population="top")
        assert not obs.success
        assert obs.failure_reason == "crash:RuntimeError"
        assert any("interpreter exploded" in e for e in obs.script_errors)

    def test_crawl_continues_past_a_crash(self):
        network = CrashingNetwork(make_network(), "plain.example")
        targets = [CrawlTarget("plain.example", 1, "top"), CrawlTarget("flaky.example", 2, "top")]
        dataset = run_crawl(network, targets, label="crashy")
        assert len(dataset.observations) == 2
        assert dataset.failure_reasons() == {"crash:RuntimeError": 1}
        assert dataset.by_domain()["flaky.example"].success

    def test_crashes_not_retried_by_default(self):
        network = CrashingNetwork(make_network(), "plain.example")
        dataset = run_crawl(network, [CrawlTarget("plain.example", 1, "top")],
                            retry_policy=RetryPolicy(max_attempts=3), label="crashy")
        assert dataset.observations[0].attempts == 1


def slow_only(slow_ms=120_000.0, max_consecutive=1):
    return FaultConfig(fault_rate=1.0, connection_error_weight=0, http_flap_weight=0,
                       truncated_script_weight=0, slow_response_weight=1,
                       slow_ms=slow_ms, max_consecutive=max_consecutive)


class TestPageWatchdog:
    def test_slow_page_times_out_instead_of_hanging(self):
        network = FaultyNetwork(make_network(), slow_only(), seed=1)
        collector = CanvasCollector(Browser(network), budget=PageBudget(max_page_ms=90_000))
        obs = collector.collect("plain.example", rank=1, population="top")
        assert not obs.success and obs.failure_reason == "timeout"

    def test_slow_page_recovers_with_retries(self):
        network = FaultyNetwork(make_network(), slow_only(), seed=1)
        dataset = run_crawl(network, [CrawlTarget("plain.example", 1, "top")],
                            retry_policy=RetryPolicy(max_attempts=3),
                            page_budget=PageBudget(max_page_ms=90_000))
        obs = dataset.observations[0]
        assert obs.success and obs.recovered
        assert len(obs.extractions) == 1

    def test_no_budget_means_no_timeout(self):
        # Collector-level: without a watchdog the latency is invisible.
        network = FaultyNetwork(make_network(), slow_only(), seed=1)
        collector = CanvasCollector(Browser(network))
        assert collector.collect("plain.example", rank=1, population="top").success

    def test_run_crawl_defaults_budget_under_fault_injection(self):
        # Crawl-level: run_crawl installs a default PageBudget whenever a
        # FaultyNetwork (or retry policy) is in play, so slow-response
        # faults surface as timeouts instead of silently doing nothing.
        network = FaultyNetwork(make_network(), slow_only(), seed=1)
        dataset = run_crawl(network, [CrawlTarget("plain.example", 1, "top")])
        obs = dataset.observations[0]
        assert not obs.success and obs.failure_reason == "timeout"

    def test_run_crawl_default_budget_recovers_with_retries(self):
        network = FaultyNetwork(make_network(), slow_only(), seed=1)
        dataset = run_crawl(network, [CrawlTarget("plain.example", 1, "top")],
                            retry_policy=RetryPolicy(max_attempts=3))
        obs = dataset.observations[0]
        assert obs.success and obs.recovered

    def test_js_step_budget_surfaces_as_timeout(self):
        net = Network()
        runaway = net.server_for("runaway.example")
        runaway.add_resource(
            "/",
            "<html><script>var n = 0; for (var i = 0; i < 100000; i++) { n = n + 1; }"
            "</script></html>",
        )
        dataset = run_crawl(net, [CrawlTarget("runaway.example", 1, "top")],
                            page_budget=PageBudget(max_js_steps=500))
        obs = dataset.observations[0]
        assert not obs.success and obs.failure_reason == "timeout"
        # Without a budget the default interpreter cap absorbs the loop.
        relaxed = run_crawl(net, [CrawlTarget("runaway.example", 1, "top")])
        assert relaxed.observations[0].success


class TestTransientFailureReasons:
    def test_truncated_script_fails_page_then_recovers(self):
        config = FaultConfig(fault_rate=1.0, connection_error_weight=0, http_flap_weight=0,
                             slow_response_weight=0, truncated_script_weight=1,
                             max_consecutive=1)
        network = FaultyNetwork(make_network(), config, seed=1)
        collector = CanvasCollector(Browser(network))
        obs = collector.collect("plain.example", rank=1, population="top")
        assert not obs.success and obs.failure_reason == "truncated-script"
        retried = run_crawl(
            FaultyNetwork(make_network(), config, seed=1),
            [CrawlTarget("plain.example", 1, "top")],
            retry_policy=RetryPolicy(max_attempts=3),
        )
        assert retried.observations[0].success and retried.observations[0].recovered

    def test_5xx_reason_distinguishes_transient_class(self):
        net = Network()
        net.server_for("down.example").add_resource("/", "oops", status=503)
        collector = CanvasCollector(Browser(net))
        obs = collector.collect("down.example", rank=1, population="top")
        assert obs.failure_reason == "server-error-503"
        assert is_transient(obs.failure_reason)

    def test_4xx_reason_stays_permanent(self):
        net = Network()
        net.server_for("gone.example").add_resource("/", "gone", status=410)
        collector = CanvasCollector(Browser(net))
        obs = collector.collect("gone.example", rank=1, population="top")
        assert obs.failure_reason == "http-410"
        assert not is_transient(obs.failure_reason)

    def test_dns_dead_subresource_keeps_page_a_success(self):
        # A permanently nonexistent third-party host is breakage the site
        # shipped, not weather: the page stays a success (with the miss
        # recorded) so retries are never burned on it.
        net = Network()
        site = net.server_for("site.example")
        site.add_resource(
            "/", '<html><script src="https://nxdomain.example/fp.js"></script></html>'
        )
        collector = CanvasCollector(Browser(net))
        obs = collector.collect("site.example", rank=1, population="top")
        assert obs.success
        assert any("fetch failed" in e for e in obs.script_errors)

    def test_5xx_subresource_is_page_fatal_and_transient(self):
        net = Network()
        net.server_for("cdn.example").add_resource(
            "/fp.js", "oops", content_type="application/javascript", status=503
        )
        site = net.server_for("site.example")
        site.add_resource(
            "/", '<html><script src="https://cdn.example/fp.js"></script></html>'
        )
        collector = CanvasCollector(Browser(net))
        obs = collector.collect("site.example", rank=1, population="top")
        assert not obs.success and obs.failure_reason == "subresource-error"
        assert is_transient(obs.failure_reason)

    def test_connection_error_subresource_fatal_but_dns_is_not(self):
        collector = CanvasCollector(Browser(Network()))
        page = Page(url=URL("https", "site.example"), ok=True, status=200)
        page.subresource_failures.append(("https://dead.example/a.js", 0, "dns"))
        assert collector._page_fault_reason(page) is None
        page.subresource_failures.append(("https://flaky.example/b.js", 0, "connection"))
        assert collector._page_fault_reason(page) == "subresource-error"

    def test_inner_page_failures_counted(self):
        net = make_network()
        collector = CanvasCollector(Browser(net), inner_paths=("/login",))
        obs = collector.collect("plain.example", rank=1, population="top")
        assert obs.success
        assert obs.inner_page_failures == 1  # no /login page exists


FAULT_MIX = FaultConfig(fault_rate=0.25, max_consecutive=2)


@pytest.fixture(scope="module")
def small_world():
    return build_world(StudyScale(fraction=0.002))


class TestFaultRecoveryEndToEnd:
    def _crawl(self, network, targets, retries):
        # Worst-case recovery needs 1 + 2×max_consecutive attempts: a faulty
        # document blocks script fetches, so document faults (≤2) and script
        # faults (≤2) can only clear sequentially before the clean load.
        return run_crawl(
            network,
            targets,
            label="faulty",
            retry_policy=RetryPolicy(max_attempts=5) if retries else None,
            page_budget=PageBudget(max_page_ms=90_000),
        )

    def test_retries_recover_the_fault_free_success_set(self, small_world):
        targets = small_world.all_targets
        clean = self._crawl(small_world.network, targets, retries=False)
        faulty = FaultyNetwork(small_world.network, FAULT_MIX, seed=11)
        resilient = self._crawl(faulty, targets, retries=True)

        assert {o.domain for o in resilient.successful()} == {
            o.domain for o in clean.successful()
        }
        assert resilient.recovered_count() > 0
        # Recovered pages carry the same canvases as the fault-free crawl.
        clean_hashes = {
            o.domain: sorted(e.canvas_hash for e in o.extractions)
            for o in clean.successful()
        }
        resilient_hashes = {
            o.domain: sorted(e.canvas_hash for e in o.extractions)
            for o in resilient.successful()
        }
        assert resilient_hashes == clean_hashes

    def test_disabling_retries_degrades_success(self, small_world):
        targets = small_world.all_targets
        clean = self._crawl(small_world.network, targets, retries=False)
        faulty = FaultyNetwork(small_world.network, FAULT_MIX, seed=11)
        degraded = self._crawl(faulty, targets, retries=False)
        assert len(degraded.successful()) < len(clean.successful())

    def test_same_seed_reproduces_identical_dataset(self, small_world):
        targets = small_world.all_targets
        first = self._crawl(FaultyNetwork(small_world.network, FAULT_MIX, seed=42), targets, True)
        second = self._crawl(FaultyNetwork(small_world.network, FAULT_MIX, seed=42), targets, True)
        assert [o.to_json() for o in first.observations] == [
            o.to_json() for o in second.observations
        ]

    def test_health_reporting(self, small_world):
        targets = small_world.all_targets
        faulty = FaultyNetwork(small_world.network, FAULT_MIX, seed=11)
        dataset = self._crawl(faulty, targets, retries=True)
        health = dataset.health()
        assert health.total == len(targets)
        assert health.recovered == dataset.recovered_count() > 0
        assert sum(health.attempts_histogram.values()) == health.total
        assert health.total_attempts > health.total  # retries happened
        text = health.summary()
        assert "recovered by retry" in text and "attempts histogram" in text
        for reason, count, transient in health.failure_rows:
            assert count > 0 and transient == is_transient(reason)
