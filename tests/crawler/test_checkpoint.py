"""Tests for durable storage: atomic writes, clear errors, checkpoint/resume."""

import gzip
import json

import pytest

from repro.core.records import SiteObservation
from repro.crawler.crawl import CrawlDataset, CrawlTarget, resume_crawl, run_crawl
from repro.crawler.storage import (
    CheckpointWriter,
    DatasetError,
    checkpoint_path,
    iter_observations,
    load_checkpoint,
    load_dataset,
    save_dataset,
)
from repro.net.server import Network

FP_SCRIPT = """
var c = document.createElement('canvas');
c.width = 200; c.height = 40;
var g = c.getContext('2d');
g.font = '13px Arial';
g.fillText('checkpoint probe text', 3, 20);
window.__fp = c.toDataURL();
"""


def make_obs(domain, success=True, **kwargs):
    return SiteObservation(domain=domain, rank=1, population="top", success=success, **kwargs)


def make_dataset(label="chk", domains=("a.example", "b.example")):
    return CrawlDataset(label=label, observations=[make_obs(d) for d in domains])


@pytest.fixture
def network():
    net = Network()
    for i in range(6):
        server = net.server_for(f"site-{i}.example")
        server.add_resource("/", f"<html><title>{i}</title><script>{FP_SCRIPT}</script></html>")
    return net


TARGETS = [CrawlTarget(f"site-{i}.example", i + 1, "top") for i in range(6)]


class TestAtomicSave:
    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        save_dataset(make_dataset(), path)
        assert path.exists()
        assert list(tmp_path.iterdir()) == [path]

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        save_dataset(make_dataset(domains=("old.example",)), path)
        save_dataset(make_dataset(domains=("new.example",)), path)
        assert [o.domain for o in load_dataset(path).observations] == ["new.example"]

    def test_gzip_atomic_save_roundtrip(self, tmp_path):
        path = tmp_path / "crawl.jsonl.gz"
        save_dataset(make_dataset(), path)
        assert list(tmp_path.iterdir()) == [path]
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            assert json.loads(fh.readline())["format"] == "repro-crawl-v1"
        assert len(load_dataset(path).observations) == 2


class TestClearErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="no such dataset"):
            load_dataset(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DatasetError, match="empty dataset"):
            load_dataset(path)

    def test_corrupt_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(DatasetError, match="corrupt dataset header"):
            load_dataset(path)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(DatasetError, match="unknown dataset format"):
            list(iter_observations(path))

    def test_truncated_line_reports_line_number(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        save_dataset(make_dataset(), path)
        path.write_text(path.read_text()[:-25])  # tear the last record
        with pytest.raises(DatasetError, match="line 3"):
            list(iter_observations(path))

    def test_dataset_error_is_value_error(self):
        assert issubclass(DatasetError, ValueError)

    def test_truncated_gzip_reports_dataset_error(self, tmp_path):
        path = tmp_path / "crawl.jsonl.gz"
        save_dataset(make_dataset(), path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # cut the gzip stream mid-flight
        with pytest.raises(DatasetError, match="corrupt or truncated"):
            list(iter_observations(path))
        with pytest.raises(DatasetError, match="corrupt or truncated"):
            load_dataset(path)

    def test_non_gzip_bytes_behind_gz_suffix_report_dataset_error(self, tmp_path):
        path = tmp_path / "crawl.jsonl.gz"
        path.write_bytes(b"plainly not gzip data\n")
        with pytest.raises(DatasetError):
            load_dataset(path)
        with pytest.raises(DatasetError):
            list(iter_observations(path))


class TestCheckpointWriter:
    def test_partial_then_finalize(self, tmp_path):
        final = tmp_path / "crawl.jsonl"
        writer = CheckpointWriter(final, label="chk")
        writer.write(make_obs("a.example"))
        writer.write(make_obs("b.example"))
        partial = checkpoint_path(final)
        assert partial.exists() and not final.exists()
        assert len(load_checkpoint(final).observations) == 2  # readable mid-crawl
        writer.finalize()
        assert final.exists() and not partial.exists()
        loaded = load_dataset(final)
        assert loaded.label == "chk"
        assert [o.domain for o in loaded.observations] == ["a.example", "b.example"]

    def test_finalize_to_gzip(self, tmp_path):
        final = tmp_path / "crawl.jsonl.gz"
        with CheckpointWriter(final, label="gz") as writer:
            writer.write(make_obs("a.example"))
        assert not checkpoint_path(final).exists()
        assert load_dataset(final).observations[0].domain == "a.example"

    def test_resume_appends_to_partial(self, tmp_path):
        final = tmp_path / "crawl.jsonl"
        first = CheckpointWriter(final, label="chk")
        first.write(make_obs("a.example"))
        first.close()  # killed mid-crawl: no finalize
        second = CheckpointWriter(final, label="chk", resume=True)
        second.write(make_obs("b.example"))
        second.finalize()
        assert [o.domain for o in load_dataset(final).observations] == [
            "a.example", "b.example"
        ]

    def test_fresh_writer_truncates_stale_partial(self, tmp_path):
        final = tmp_path / "crawl.jsonl"
        stale = CheckpointWriter(final, label="old")
        stale.write(make_obs("stale.example"))
        stale.close()
        with CheckpointWriter(final, label="new") as writer:
            writer.write(make_obs("fresh.example"))
        assert [o.domain for o in load_dataset(final).observations] == ["fresh.example"]

    def test_resume_seeds_partial_from_finished_file(self, tmp_path):
        final = tmp_path / "crawl.jsonl.gz"
        save_dataset(make_dataset(domains=("a.example",)), final)
        writer = CheckpointWriter(final, label="chk", resume=True)
        writer.write(make_obs("b.example"))
        writer.finalize()
        assert [o.domain for o in load_dataset(final).observations] == [
            "a.example", "b.example"
        ]

    def test_torn_final_line_tolerated_on_resume(self, tmp_path):
        final = tmp_path / "crawl.jsonl"
        writer = CheckpointWriter(final, label="chk")
        writer.write(make_obs("a.example"))
        writer.write(make_obs("b.example"))
        writer.close()
        partial = checkpoint_path(final)
        partial.write_text(partial.read_text()[:-30])  # kill mid-write
        loaded = load_checkpoint(final)
        assert [o.domain for o in loaded.observations] == ["a.example"]

    def test_corrupt_middle_line_still_raises(self, tmp_path):
        final = tmp_path / "crawl.jsonl"
        writer = CheckpointWriter(final, label="chk")
        writer.write(make_obs("a.example"))
        writer.write(make_obs("b.example"))
        writer.close()
        partial = checkpoint_path(final)
        lines = partial.read_text().splitlines(keepends=True)
        lines[1] = lines[1][:-20] + "\n"
        partial.write_text("".join(lines))
        with pytest.raises(DatasetError, match="line 2"):
            load_checkpoint(final)

    def test_load_checkpoint_returns_none_when_nothing_exists(self, tmp_path):
        assert load_checkpoint(tmp_path / "never.jsonl") is None

    def test_resume_truncates_torn_tail_before_appending(self, tmp_path):
        # A mid-write kill leaves a torn fragment; a resume must not
        # concatenate the next record onto it.
        final = tmp_path / "crawl.jsonl"
        writer = CheckpointWriter(final, label="chk")
        writer.write(make_obs("a.example"))
        writer.write(make_obs("b.example"))
        writer.close()
        partial = checkpoint_path(final)
        partial.write_text(partial.read_text()[:-30])  # kill mid-write
        second = CheckpointWriter(final, label="chk", resume=True)
        second.write(make_obs("c.example"))
        second.finalize()
        loaded = load_dataset(final)  # must not raise: no torn line survives
        assert [o.domain for o in loaded.observations] == ["a.example", "c.example"]

    def test_stale_partial_next_to_finished_file_is_ignored(self, tmp_path):
        # A crash in finalize() between promotion and cleanup leaves the
        # pre-finalize partial next to the finished dataset; the final file
        # has at least as many records and must win.
        final = tmp_path / "crawl.jsonl.gz"
        save_dataset(make_dataset(domains=("a.example", "b.example")), final)
        partial = checkpoint_path(final)
        partial.write_text(
            json.dumps({"label": "chk", "format": "repro-crawl-v1"}) + "\n"
            + json.dumps(make_obs("a.example").to_json(), separators=(",", ":")) + "\n"
        )
        checkpoint = load_checkpoint(final)
        assert [o.domain for o in checkpoint.observations] == ["a.example", "b.example"]
        # A resuming writer re-seeds from the final file, shadowing the
        # stale partial entirely.
        writer = CheckpointWriter(final, label="chk", resume=True)
        writer.write(make_obs("c.example"))
        writer.finalize()
        assert [o.domain for o in load_dataset(final).observations] == [
            "a.example", "b.example", "c.example"
        ]

    def test_partial_with_more_progress_than_final_still_wins(self, tmp_path):
        # An interrupted *continuation* of a finished crawl is real progress,
        # not finalize residue: the partial must stay preferred.
        final = tmp_path / "crawl.jsonl"
        save_dataset(make_dataset(domains=("a.example",)), final)
        writer = CheckpointWriter(final, label="chk", resume=True)
        writer.write(make_obs("b.example"))
        writer.close()  # killed before finalize: partial (a, b) next to final (a)
        checkpoint = load_checkpoint(final)
        assert [o.domain for o in checkpoint.observations] == ["a.example", "b.example"]


class TestResumeCrawl:
    def test_interrupted_crawl_resumes_to_identical_dataset(self, network, tmp_path):
        reference = run_crawl(network, TARGETS, label="ref")

        out = tmp_path / "crawl.jsonl"
        killed_after = 2

        def bomb(index, observation):
            if index + 1 == killed_after:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            resume_crawl(network, TARGETS, out, label="ref", progress=bomb)

        # The kill left a loadable checkpoint with exactly the crawled prefix.
        assert not out.exists()
        checkpoint = load_checkpoint(out)
        assert [o.domain for o in checkpoint.observations] == [
            t.domain for t in TARGETS[:killed_after]
        ]

        revisited = []
        resumed = resume_crawl(
            network, TARGETS, out, label="ref",
            progress=lambda i, o: revisited.append(o.domain),
        )
        # Already-persisted domains are not re-visited...
        assert revisited == [t.domain for t in TARGETS[killed_after:]]
        # ...and the result equals an uninterrupted crawl, on disk too.
        assert [o.to_json() for o in resumed.observations] == [
            o.to_json() for o in reference.observations
        ]
        assert [o.to_json() for o in load_dataset(out).observations] == [
            o.to_json() for o in reference.observations
        ]
        assert not checkpoint_path(out).exists()

    def test_resume_after_kill_mid_write_yields_clean_dataset(self, network, tmp_path):
        # The full kill-mid-write story: the crawl dies while a record is
        # half-flushed, the torn site is re-crawled on resume, and the
        # promoted dataset is byte-equivalent to an uninterrupted run.
        reference = run_crawl(network, TARGETS, label="ref")
        out = tmp_path / "crawl.jsonl"

        def bomb(index, observation):
            if index + 1 == 3:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            resume_crawl(network, TARGETS, out, label="ref", progress=bomb)
        partial = checkpoint_path(out)
        partial.write_text(partial.read_text()[:-40])  # tear the last record

        resumed = resume_crawl(network, TARGETS, out, label="ref")
        assert not partial.exists()
        loaded = load_dataset(out)  # must not raise DatasetError
        assert [o.to_json() for o in loaded.observations] == [
            o.to_json() for o in reference.observations
        ]
        assert [o.to_json() for o in resumed.observations] == [
            o.to_json() for o in reference.observations
        ]

    def test_resume_over_finished_crawl_revisits_nothing(self, network, tmp_path):
        out = tmp_path / "crawl.jsonl.gz"
        first = resume_crawl(network, TARGETS, out, label="ref")
        revisited = []
        second = resume_crawl(
            network, TARGETS, out, label="ref",
            progress=lambda i, o: revisited.append(o.domain),
        )
        assert revisited == []
        assert len(second.observations) == len(first.observations) == len(TARGETS)
        assert len(load_dataset(out).observations) == len(TARGETS)

    def test_fresh_run_ignores_prior_state(self, network, tmp_path):
        out = tmp_path / "crawl.jsonl"
        resume_crawl(network, TARGETS[:3], out, label="ref")
        dataset = resume_crawl(network, TARGETS, out, label="ref", resume=False)
        assert len(dataset.observations) == len(TARGETS)
        assert len(load_dataset(out).observations) == len(TARGETS)
