"""Chaos tests for the shard supervisor (repro.crawler.supervisor).

These tests kill and wedge real worker processes: every ``worker-crash``
poison site takes down its (sacrificial, forked) crawl process with
``os._exit``, and every ``worker-hang`` site stalls one in a real sleep.
The supervisor must complete the crawl anyway — re-dispatching remainders
from the per-shard checkpoints, bisecting repeat offenders down to the
poison site, and accounting for every planned site as crawled, failed, or
quarantined.

``REPRO_SUPERVISED_JOBS`` scales worker parallelism (default 2; CI runs 4).
"""

import json
import os

import pytest

from repro.crawler.crawl import QUARANTINE_PREFIX, CrawlTarget, run_crawl
from repro.crawler.shards import run_sharded_crawl
from repro.crawler.storage import save_dataset
from repro.crawler.supervisor import (
    QuarantineLedger,
    QuarantineRecord,
    SupervisorConfig,
    SupervisorError,
    quarantine_ledger_path,
    run_supervised_crawl,
)
from repro.net.faults import FaultConfig, FaultyNetwork
from repro.net.server import Network

JOBS = int(os.environ.get("REPRO_SUPERVISED_JOBS", "2"))

FP_SCRIPT = """
var c = document.createElement('canvas');
c.width = 220; c.height = 40;
var g = c.getContext('2d');
g.font = '13px Arial';
g.fillText('supervisor probe', 3, 20);
window.__fp = c.toDataURL();
"""


def make_network(n=8):
    net = Network()
    for i in range(n):
        server = net.server_for(f"site-{i}.example")
        server.add_resource(
            "/", f"<html><title>{i}</title><script>{FP_SCRIPT}</script></html>"
        )
    return net


def make_targets(n=8):
    return [
        CrawlTarget(f"site-{i}.example", i + 1, "top" if i % 2 == 0 else "tail")
        for i in range(n)
    ]


def crashy_network(n, *poison, hang=()):
    """A network where visiting ``poison`` domains kills the crawl process."""
    return FaultyNetwork(
        make_network(n),
        FaultConfig(worker_crash_domains=tuple(poison), worker_hang_domains=tuple(hang)),
    )


def fast_config(**overrides):
    defaults = dict(liveness_deadline_s=30.0, poll_interval_s=0.01)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


class TestNoFaultEquivalence:
    """A no-fault supervised run is byte-identical to the unsupervised path."""

    def test_supervised_equals_unsupervised(self):
        targets = make_targets(10)
        plain = run_sharded_crawl(
            make_network(10), targets, label="control", jobs=JOBS, shards=4
        )
        supervised = run_sharded_crawl(
            make_network(10), targets, label="control", jobs=JOBS, shards=4,
            supervisor=fast_config(),
        )
        assert supervised.observations == plain.observations
        assert supervised.health() == plain.health()

    def test_supervised_dataset_bytes_identical(self, tmp_path):
        targets = make_targets(8)
        plain = run_sharded_crawl(
            make_network(8), targets, label="control", jobs=JOBS, shards=3
        )
        supervised = run_supervised_crawl(
            make_network(8), targets, label="control", jobs=JOBS, shards=3,
            config=fast_config(),
        )
        save_dataset(plain, tmp_path / "plain.jsonl")
        save_dataset(supervised, tmp_path / "supervised.jsonl")
        assert (tmp_path / "plain.jsonl").read_bytes() == (
            tmp_path / "supervised.jsonl"
        ).read_bytes()

    def test_no_fault_run_writes_no_quarantine(self, tmp_path):
        targets = make_targets(6)
        dataset = run_supervised_crawl(
            make_network(6), targets, label="control", jobs=JOBS, shards=2,
            checkpoint_dir=tmp_path, config=fast_config(),
        )
        assert dataset.quarantined_sites() == {}
        assert dataset.health().quarantined == 0
        assert not quarantine_ledger_path(tmp_path).exists()

    def test_serial_supervised_equals_serial_plain(self):
        """jobs=1 under supervision still matches the plain serial crawl."""
        targets = make_targets(5)
        plain = run_crawl(make_network(5), targets, label="control")
        supervised = run_supervised_crawl(
            make_network(5), targets, label="control", jobs=1, shards=1,
            config=fast_config(),
        )
        assert supervised.observations == plain.observations


class TestCrashRecovery:
    """worker-crash poison sites: re-dispatch, bisection, quarantine."""

    def test_poison_site_is_isolated_and_study_completes(self, tmp_path):
        targets = make_targets(8)
        poison = targets[3].domain
        dataset = run_sharded_crawl(
            crashy_network(8, poison), targets, label="chaos", jobs=JOBS, shards=2,
            checkpoint_dir=tmp_path, supervisor=fast_config(),
        )
        # Every planned site is accounted for: crawled or quarantined.
        assert [o.domain for o in dataset.observations] == [t.domain for t in targets]
        assert dataset.quarantined_sites() == {poison: "quarantined:exit:137"}
        healthy = [o for o in dataset.observations if o.domain != poison]
        assert all(o.success for o in healthy)
        health = dataset.health()
        assert health.quarantined == 1
        assert health.successes == len(targets) - 1
        assert "quarantined by supervisor" in health.summary()

    def test_quarantine_ledger_contents(self, tmp_path):
        targets = make_targets(6)
        poison = targets[2].domain
        run_sharded_crawl(
            crashy_network(6, poison), targets, label="chaos", jobs=JOBS, shards=2,
            checkpoint_dir=tmp_path, supervisor=fast_config(),
        )
        ledger = QuarantineLedger.load(quarantine_ledger_path(tmp_path))
        assert len(ledger.records) == 1
        record = ledger.records[0]
        assert record.domain == poison
        assert record.reason == "worker-killed"
        assert record.last_signal == "exit:137"
        assert record.attempts >= 2  # at least max_shard_crashes deaths
        assert record.failure_reason == f"{QUARANTINE_PREFIX}exit:137"

    def test_remainder_recrawled_exactly_once(self, tmp_path):
        """Checkpoint-verified: no domain is persisted twice across all
        shard checkpoints, despite respawns and bisections."""
        targets = make_targets(10)
        poison = targets[7].domain
        dataset = run_sharded_crawl(
            crashy_network(10, poison), targets, label="chaos", jobs=JOBS, shards=2,
            checkpoint_dir=tmp_path, supervisor=fast_config(),
        )
        seen = []
        for path in tmp_path.glob("chaos.shard-*"):
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    if line.strip():
                        record = json.loads(line)
                        if "domain" in record:
                            seen.append(record["domain"])
        assert len(seen) == len(set(seen)), f"duplicate checkpoint rows: {seen}"
        # And the merged dataset carries no duplicates either.
        domains = [o.domain for o in dataset.observations]
        assert len(domains) == len(set(domains))

    def test_multiple_poison_sites_all_quarantined(self, tmp_path):
        targets = make_targets(8)
        poison = {targets[1].domain, targets[6].domain}
        dataset = run_sharded_crawl(
            crashy_network(8, *poison), targets, label="chaos", jobs=JOBS, shards=2,
            checkpoint_dir=tmp_path, supervisor=fast_config(),
        )
        assert set(dataset.quarantined_sites()) == poison
        assert dataset.health().successes == len(targets) - len(poison)
        ledger = QuarantineLedger.load(quarantine_ledger_path(tmp_path))
        assert {r.domain for r in ledger.records} == poison

    def test_bisection_metrics_are_recorded(self, tmp_path):
        from repro import obs

        targets = make_targets(8)
        before = obs.METRICS.snapshot()
        run_sharded_crawl(
            crashy_network(8, targets[0].domain), targets, label="chaos",
            jobs=JOBS, shards=2, checkpoint_dir=tmp_path, supervisor=fast_config(),
        )
        delta = obs.diff_metric_snapshots(before, obs.METRICS.snapshot())
        counters = delta.get("counters", {})
        assert counters.get("supervisor.quarantined") == 1
        assert counters.get("supervisor.splits", 0) >= 1
        assert counters.get("supervisor.respawns", 0) >= 2
        assert counters.get("supervisor.deaths[exit:137]", 0) >= 2

    def test_respawn_budget_blowout_raises(self, tmp_path):
        targets = make_targets(4)
        with pytest.raises(SupervisorError):
            run_supervised_crawl(
                crashy_network(4, targets[0].domain), targets, label="chaos",
                jobs=JOBS, shards=2, checkpoint_dir=tmp_path,
                config=fast_config(max_total_respawns=1),
            )


class TestHangRecovery:
    """worker-hang poison sites: liveness-deadline detection."""

    def test_hung_worker_is_killed_and_site_quarantined(self, tmp_path):
        targets = make_targets(4)
        tarpit = targets[1].domain
        dataset = run_sharded_crawl(
            crashy_network(4, hang=(tarpit,)), targets, label="chaos",
            jobs=JOBS, shards=2, checkpoint_dir=tmp_path,
            supervisor=fast_config(liveness_deadline_s=0.5),
        )
        assert dataset.quarantined_sites() == {tarpit: "quarantined:heartbeat-timeout"}
        healthy = [o for o in dataset.observations if o.domain != tarpit]
        assert all(o.success for o in healthy)
        ledger = QuarantineLedger.load(quarantine_ledger_path(tmp_path))
        assert ledger.records[0].last_signal == "heartbeat-timeout"


class TestLedger:
    def test_record_roundtrip(self):
        record = QuarantineRecord(
            domain="poison.example", rank=7, population="tail", label="chaos",
            reason="worker-killed", attempts=3, last_signal="exit:137",
            shard="0001.a.b", ts=123.5,
        )
        assert QuarantineRecord.from_json(record.to_json()) == record

    def test_ledger_append_and_load(self, tmp_path):
        path = quarantine_ledger_path(tmp_path)
        ledger = QuarantineLedger(path)
        for i in range(3):
            ledger.append(
                QuarantineRecord(
                    domain=f"p{i}.example", rank=i, population="top", label="x",
                    reason="worker-killed", attempts=2, last_signal="exit:137",
                    shard=f"000{i}",
                )
            )
        loaded = QuarantineLedger.load(path)
        assert loaded.records == ledger.records

    def test_load_missing_ledger_is_empty(self, tmp_path):
        assert QuarantineLedger.load(tmp_path / "nope.jsonl").records == []


class TestConfigValidation:
    def test_invalid_max_shard_crashes(self):
        with pytest.raises(ValueError):
            SupervisorConfig(max_shard_crashes=0)

    def test_invalid_liveness_deadline(self):
        with pytest.raises(ValueError):
            SupervisorConfig(liveness_deadline_s=0.0)


class TestStudyIntegration:
    """The supervisor threads through the stage graph and StudyResult."""

    def test_supervised_study_surfaces_quarantine(self):
        from repro.analysis.report import quarantine_table
        from repro.core.pipeline import run_study

        targets = make_targets(8)
        poison = targets[5].domain
        result = run_study(
            crashy_network(8, poison), targets, [],
            include_adblock_crawls=False, jobs=JOBS,
            stages=["crawl.control"], supervisor=fast_config(),
        )
        assert result.quarantined == {poison: "quarantined:exit:137"}
        assert len(result.control.observations) == len(targets)
        table = quarantine_table(result)
        assert poison in table
        assert "coverage loss: 1/8" in table

    def test_unsupervised_study_has_empty_quarantine(self):
        from repro.analysis.report import quarantine_table
        from repro.core.pipeline import run_study

        targets = make_targets(4)
        result = run_study(
            make_network(4), targets, [],
            include_adblock_crawls=False, stages=["crawl.control"],
        )
        assert result.quarantined == {}
        assert quarantine_table(result) == ""
