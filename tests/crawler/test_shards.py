"""Sharded parallel crawls: planning, merging, equivalence, resume."""

import json

import pytest

from repro.config import StudyScale
from repro.crawler.crawl import CrawlDataset, CrawlTarget, run_crawl
from repro.crawler.shards import (
    merge_shard_datasets,
    plan_shards,
    run_sharded_crawl,
    shard_checkpoint_path,
)
from repro.net.server import Network
from repro.webgen import build_world

FP_SCRIPT = """
var c = document.createElement('canvas');
c.width = 220; c.height = 40;
var g = c.getContext('2d');
g.font = '13px Arial';
g.fillText('shard probe text', 3, 20);
window.__fp = c.toDataURL();
"""


def make_network(n=10):
    net = Network()
    for i in range(n):
        server = net.server_for(f"site-{i}.example")
        server.add_resource("/", f"<html><title>{i}</title><script>{FP_SCRIPT}</script></html>")
    return net


def make_targets(n=10):
    return [
        CrawlTarget(f"site-{i}.example", i + 1, "top" if i % 2 == 0 else "tail")
        for i in range(n)
    ]


class TestPlanShards:
    def test_round_robin_is_deterministic(self):
        targets = make_targets(10)
        assert plan_shards(targets, 3) == plan_shards(targets, 3)
        assert plan_shards(targets, 3)[0] == targets[0::3]
        assert plan_shards(targets, 3)[2] == targets[2::3]

    def test_shards_cover_all_targets_exactly_once(self):
        targets = make_targets(11)
        planned = plan_shards(targets, 4)
        flat = [t for shard in planned for t in shard]
        assert sorted(t.domain for t in flat) == sorted(t.domain for t in targets)

    def test_interleaving_balances_populations(self):
        targets = make_targets(12)  # alternating top/tail
        for shard in plan_shards(targets, 3):
            populations = {t.population for t in shard}
            assert populations == {"top", "tail"}

    def test_more_shards_than_targets_drops_empty(self):
        planned = plan_shards(make_targets(3), 8)
        assert len(planned) == 3
        assert all(shard for shard in planned)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            plan_shards(make_targets(3), 0)


class TestMerge:
    def test_merge_restores_target_order(self):
        targets = make_targets(9)
        network = make_network(9)
        shard_datasets = [
            run_crawl(network, shard, label="control")
            for shard in plan_shards(targets, 3)
        ]
        merged = merge_shard_datasets("control", targets, shard_datasets)
        assert [o.domain for o in merged.observations] == [t.domain for t in targets]

    def test_merged_health_equals_serial_health(self):
        targets = make_targets(8)
        serial = run_crawl(make_network(8), targets, label="control")
        shard_datasets = [
            run_crawl(make_network(8), shard, label="control")
            for shard in plan_shards(targets, 3)
        ]
        merged = merge_shard_datasets("control", targets, shard_datasets)
        assert merged.health() == serial.health()


class TestMergeDegenerateShards:
    """Regression: empty / all-failed shards must not corrupt the merge."""

    def _failed(self, target, reason="dns"):
        from repro.core.records import SiteObservation

        return SiteObservation(
            domain=target.domain, rank=target.rank, population=target.population,
            success=False, failure_reason=reason,
        )

    def test_empty_shard_preserves_global_ordering(self):
        targets = make_targets(6)
        network = make_network(6)
        planned = plan_shards(targets, 3)
        shard_datasets = [
            run_crawl(network, shard, label="control") for shard in planned
        ]
        shard_datasets.insert(1, CrawlDataset(label="control"))  # empty shard
        merged = merge_shard_datasets("control", targets, shard_datasets)
        assert [o.domain for o in merged.observations] == [t.domain for t in targets]

    def test_all_failed_shard_keeps_its_failure_rows(self):
        targets = make_targets(6)
        network = make_network(6)
        planned = plan_shards(targets, 3)
        shard_datasets = [run_crawl(network, planned[0], label="control")]
        failed = CrawlDataset(label="control")
        failed.observations.extend(self._failed(t) for t in planned[1])
        shard_datasets.append(failed)
        shard_datasets.append(run_crawl(network, planned[2], label="control"))
        merged = merge_shard_datasets("control", targets, shard_datasets)
        assert [o.domain for o in merged.observations] == [t.domain for t in targets]
        health = merged.health()
        assert health.successes == len(planned[0]) + len(planned[2])
        assert dict(merged.failure_reasons()) == {"dns": len(planned[1])}

    def test_success_beats_failure_across_duplicate_shards(self):
        """A salvaged failure row never shadows a completed re-crawl."""
        targets = make_targets(4)
        network = make_network(4)
        crawled = run_crawl(network, targets, label="control")
        failed = CrawlDataset(label="control")
        failed.observations.extend(self._failed(t, reason="quarantined:exit:137")
                                   for t in targets[:2])
        # Failure rows first or last — the successful observation always wins.
        for shard_order in ([failed, crawled], [crawled, failed]):
            merged = merge_shard_datasets("control", targets, shard_order)
            assert [o.domain for o in merged.observations] == [
                t.domain for t in targets
            ]
            assert all(o.success for o in merged.observations)

    def test_later_failure_replaces_earlier_failure(self):
        targets = make_targets(2)
        first = CrawlDataset(label="control")
        first.observations.append(self._failed(targets[0], reason="dns"))
        second = CrawlDataset(label="control")
        second.observations.append(self._failed(targets[0], reason="timeout"))
        merged = merge_shard_datasets("control", targets, [first, second])
        assert merged.observations[0].failure_reason == "timeout"

    def test_all_shards_empty_yields_empty_dataset(self):
        targets = make_targets(3)
        merged = merge_shard_datasets(
            "control", targets, [CrawlDataset(label="control")] * 3
        )
        assert merged.observations == []
        assert merged.health().total == 0


class TestKeyboardInterruptShutdown:
    """Regression: Ctrl-C mid-crawl must cancel queued shards, not leak workers."""

    class FakePool:
        instances = []

        def __init__(self, max_workers=None):
            self.shutdown_calls = []
            TestKeyboardInterruptShutdown.FakePool.instances.append(self)

        def map(self, fn, payloads):
            raise KeyboardInterrupt

        def shutdown(self, wait=True, cancel_futures=False):
            self.shutdown_calls.append((wait, cancel_futures))

    def test_pool_cancelled_and_interrupt_reraised(self, monkeypatch):
        import repro.crawler.shards as shards_mod

        self.FakePool.instances.clear()
        monkeypatch.setattr(shards_mod, "ProcessPoolExecutor", self.FakePool)
        with pytest.raises(KeyboardInterrupt):
            run_sharded_crawl(
                make_network(6), make_targets(6), label="control", jobs=3
            )
        (pool,) = self.FakePool.instances
        assert pool.shutdown_calls == [(False, True)]


class TestSerialParallelEquivalence:
    def test_sharded_serial_equals_plain_crawl(self):
        targets = make_targets(10)
        plain = run_crawl(make_network(10), targets, label="control")
        sharded = run_sharded_crawl(
            make_network(10), targets, label="control", jobs=1, shards=4
        )
        assert sharded.observations == plain.observations
        assert sharded.label == plain.label

    def test_parallel_workers_equal_serial(self):
        """Same seed, 1 vs 4 workers: identical observations in order."""
        world = build_world(StudyScale(fraction=0.005, seed=11))
        serial = run_sharded_crawl(world.network, world.all_targets, jobs=1)

        world2 = build_world(StudyScale(fraction=0.005, seed=11))
        parallel = run_sharded_crawl(world2.network, world2.all_targets, jobs=4)

        assert [o.domain for o in parallel.observations] == [
            o.domain for o in serial.observations
        ]
        assert parallel.observations == serial.observations
        assert parallel.health() == serial.health()


class TestShardedResume:
    def test_resume_after_partial_shards(self, tmp_path):
        """A killed sharded crawl resumes from per-shard partials."""
        targets = make_targets(10)
        checkpoint_dir = tmp_path / "shards"

        # A complete reference run (no checkpoints at all).
        reference = run_sharded_crawl(make_network(10), targets, label="control")

        # Simulate a kill: crawl only two of the four shards, leaving their
        # checkpoints as .partial files (never finalized).
        planned = plan_shards(targets, 4)
        checkpoint_dir.mkdir()
        for index in (0, 2):
            partial = run_crawl(make_network(10), planned[index], label="control")
            path = shard_checkpoint_path(checkpoint_dir, "control", index, len(planned))
            with open(f"{path}.partial", "w", encoding="utf-8") as fh:
                for obs in partial.observations:
                    fh.write(json.dumps(obs.to_json()) + "\n")

        network = make_network(10)
        served_before = network.requests_served
        resumed = run_sharded_crawl(
            network, targets, label="control", jobs=1, shards=4,
            checkpoint_dir=checkpoint_dir,
        )
        # Only the two un-crawled shards (5 of 10 sites) hit the network.
        assert network.requests_served - served_before < 10
        assert resumed.observations == reference.observations

    def test_parallel_resume_after_partial_shards(self, tmp_path):
        """Resume also works when the re-run is parallel."""
        world = build_world(StudyScale(fraction=0.005, seed=23))
        reference = run_sharded_crawl(world.network, world.all_targets)

        world2 = build_world(StudyScale(fraction=0.005, seed=23))
        checkpoint_dir = tmp_path / "shards"
        checkpoint_dir.mkdir()
        planned = plan_shards(world2.all_targets, 4)
        partial = run_crawl(world2.network, planned[1], label="control")
        path = shard_checkpoint_path(checkpoint_dir, "control", 1, len(planned))
        with open(f"{path}.partial", "w", encoding="utf-8") as fh:
            for obs in partial.observations:
                fh.write(json.dumps(obs.to_json()) + "\n")

        world3 = build_world(StudyScale(fraction=0.005, seed=23))
        resumed = run_sharded_crawl(
            world3.network, world3.all_targets, jobs=4, checkpoint_dir=checkpoint_dir
        )
        assert resumed.observations == reference.observations


class TestFailureRowOrdering:
    def test_failure_rows_break_count_ties_by_reason_name(self):
        """Equal-count failure reasons sort alphabetically: byte-stable summaries."""
        network = Network()  # empty: every fetch fails
        targets = make_targets(6)
        dataset = run_crawl(network, targets, label="control")
        health = dataset.health()
        assert health.successes == 0
        rows = health.failure_rows
        counts = [count for _, count, _ in rows]
        assert counts == sorted(counts, reverse=True)
        for (r1, c1, _), (r2, c2, _) in zip(rows, rows[1:]):
            if c1 == c2:
                assert r1 < r2

    def test_synthetic_tie_ordering(self):
        from repro.core.records import SiteObservation

        dataset = CrawlDataset(label="ties")
        for i, reason in enumerate(["zeta", "alpha", "mid", "alpha", "zeta", "mid"]):
            dataset.observations.append(
                SiteObservation(
                    domain=f"d{i}.example", rank=i, population="top",
                    success=False, failure_reason=reason,
                )
            )
        rows = dataset.health().failure_rows
        assert [r for r, _, _ in rows] == ["alpha", "mid", "zeta"]
