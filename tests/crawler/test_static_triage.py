"""Static-triage transparency: skipping inert scripts never changes data.

Triage (``REPRO_JS_STATIC_TRIAGE=1`` / ``--static-triage``) defers scripts
the static analyzer proves canvas-inert and effect-free toward the rest of
the page, and drops the ones nothing ever forces it to flush.  The hard
contract is byte-identity: a crawl with triage on must persist the same
dataset bytes as one with it off — pages with cross-script dataflow, parse
bombs, injected faults, supervised workers, whatever.  These tests hold
that line and pin the flush semantics that make it true.
"""

import os

from repro import perf
from repro.browser.browser import Browser
from repro.crawler.crawl import CrawlTarget, run_crawl
from repro.crawler.shards import run_sharded_crawl
from repro.crawler.storage import save_dataset
from repro.crawler.supervisor import run_supervised_crawl
from repro.net.faults import FaultConfig, FaultyNetwork
from repro.net.server import Network

JOBS = int(os.environ.get("REPRO_SUPERVISED_JOBS", "2"))

INERT_SCRIPT = """
var __pageTotals = 0;
for (var i = 0; i < 40; i++) { __pageTotals += i * 3; }
var __pageLabel = JSON.stringify({total: __pageTotals});
"""

FP_SCRIPT = """
var c = document.createElement('canvas');
c.width = 220; c.height = 40;
var g = c.getContext('2d');
g.font = '13px Arial';
g.fillText('triage probe', 3, 20);
window.__fp = c.toDataURL();
"""

WRITER_SCRIPT = "window.__sharedConfig = 'enabled';"

READER_SCRIPT = """
var mode = typeof __sharedConfig === 'undefined' ? 'off' : __sharedConfig;
var c = document.createElement('canvas');
c.width = 200; c.height = 40;
var g = c.getContext('2d');
g.fillText('mode:' + mode, 2, 20);
window.__modeCanvas = c.toDataURL();
"""

PARSE_BOMB = "var x = " + "(" * 400 + "1" + ")" * 400 + ";"


def page(*scripts, title="t"):
    tags = "".join(f"<script>{s}</script>" for s in scripts)
    return f"<html><title>{title}</title>{tags}</html>"


def make_network():
    net = Network()
    specs = {
        "inert-only.example": page(INERT_SCRIPT),
        "fp.example": page(INERT_SCRIPT, FP_SCRIPT),
        "dataflow.example": page(WRITER_SCRIPT, READER_SCRIPT),
        "bomb.example": page(PARSE_BOMB, FP_SCRIPT),
        "plain.example": page(),
    }
    for domain, html in specs.items():
        net.server_for(domain).add_resource("/", html)
    return net, list(specs)


def make_targets(domains):
    return [
        CrawlTarget(domain, i + 1, "top" if i % 2 == 0 else "tail")
        for i, domain in enumerate(domains)
    ]


class TestByteIdentity:
    def test_serial_crawl_bytes_identical(self, tmp_path):
        net, domains = make_network()
        targets = make_targets(domains)
        off = run_crawl(net, targets, label="control", static_triage=False)
        net2, _ = make_network()
        on = run_crawl(net2, targets, label="control", static_triage=True)
        save_dataset(off, tmp_path / "off.jsonl")
        save_dataset(on, tmp_path / "on.jsonl")
        assert (tmp_path / "off.jsonl").read_bytes() == (
            tmp_path / "on.jsonl"
        ).read_bytes()

    def test_observations_equal_not_just_bytes(self):
        net, domains = make_network()
        targets = make_targets(domains)
        off = run_crawl(net, targets, label="control", static_triage=False)
        net2, _ = make_network()
        on = run_crawl(net2, targets, label="control", static_triage=True)
        assert on.observations == off.observations

    def test_supervised_fault_injected_bytes_identical(self, tmp_path):
        # The acceptance gate: triage under the supervisor at jobs=N with
        # injected transient faults still persists identical bytes.
        targets = make_targets(sorted(make_network()[1]))

        def crawl(static_triage, checkpoint_dir):
            net, _ = make_network()
            faulty = FaultyNetwork(net, FaultConfig(fault_rate=0.3), seed=99)
            return run_supervised_crawl(
                faulty,
                targets,
                label="chaos",
                jobs=JOBS,
                shards=min(4, JOBS + 1),
                checkpoint_dir=checkpoint_dir,
                static_triage=static_triage,
            )

        off = crawl(False, tmp_path / "off-ckpt")
        on = crawl(True, tmp_path / "on-ckpt")
        save_dataset(off, tmp_path / "off.jsonl")
        save_dataset(on, tmp_path / "on.jsonl")
        assert (tmp_path / "off.jsonl").read_bytes() == (
            tmp_path / "on.jsonl"
        ).read_bytes()

    def test_parallel_sharded_bytes_identical(self, tmp_path):
        net, domains = make_network()
        targets = make_targets(domains)
        off = run_sharded_crawl(
            net, targets, label="control", jobs=JOBS, static_triage=False
        )
        net2, _ = make_network()
        on = run_sharded_crawl(
            net2, targets, label="control", jobs=JOBS, static_triage=True
        )
        save_dataset(off, tmp_path / "off.jsonl")
        save_dataset(on, tmp_path / "on.jsonl")
        assert (tmp_path / "off.jsonl").read_bytes() == (
            tmp_path / "on.jsonl"
        ).read_bytes()


class TestTriageSemantics:
    def test_inert_script_is_skipped(self):
        net = Network()
        net.server_for("a.example").add_resource("/", page(INERT_SCRIPT, FP_SCRIPT))
        loaded = Browser(net, static_triage=True).load("https://a.example/")
        assert loaded.skipped_scripts == ["https://a.example/#inline"]
        # The skipped script still appears in the dataset-visible lists.
        assert "https://a.example/#inline" in loaded.executed_scripts

    def test_triage_counters_move(self):
        net = Network()
        net.server_for("a.example").add_resource("/", page(INERT_SCRIPT, FP_SCRIPT))
        before = perf.PERF.snapshot().get("js.static.triage", {})
        Browser(net, static_triage=True).load("https://a.example/")
        after = perf.PERF.snapshot().get("js.static.triage", {})
        assert after.get("hits", 0) - before.get("hits", 0) == 1  # deferred
        assert after.get("misses", 0) - before.get("misses", 0) == 1  # executed

    def test_dataflow_dependency_forces_flush(self):
        # READER branches on WRITER's global: the writer cannot stay
        # deferred once the reader runs, so the canvases must match the
        # no-triage run exactly.
        net = Network()
        net.server_for("d.example").add_resource("/", page(WRITER_SCRIPT, READER_SCRIPT))
        on = Browser(net, static_triage=True).load("https://d.example/")
        off = Browser(net, static_triage=False).load("https://d.example/")
        assert on.skipped_scripts == []
        assert [repr(e) for e in on.instrument.extractions] == [
            repr(e) for e in off.instrument.extractions
        ]

    def test_triage_off_by_default(self):
        net = Network()
        net.server_for("a.example").add_resource("/", page(INERT_SCRIPT))
        loaded = Browser(net).load("https://a.example/")
        assert loaded.skipped_scripts == []

    def test_env_var_enables_triage(self, monkeypatch):
        monkeypatch.setenv("REPRO_JS_STATIC_TRIAGE", "1")
        net = Network()
        net.server_for("a.example").add_resource("/", page(INERT_SCRIPT))
        loaded = Browser(net).load("https://a.example/")
        assert loaded.skipped_scripts == ["https://a.example/#inline"]


class TestParseErrorContainment:
    def test_parse_bomb_does_not_abort_sibling_scripts(self):
        net = Network()
        net.server_for("b.example").add_resource("/", page(PARSE_BOMB, FP_SCRIPT))
        loaded = Browser(net).load("https://b.example/")
        # The bomb lands as a per-script parse_error row...
        assert [url for url, _kind in loaded.parse_errors] == [
            "https://b.example/#inline"
        ]
        # ...and the page keeps executing: the sibling canvas script ran.
        assert loaded.instrument.extractions

    def test_parse_error_recorded_in_script_errors(self):
        net = Network()
        net.server_for("b.example").add_resource("/", page(PARSE_BOMB))
        loaded = Browser(net).load("https://b.example/")
        assert any("parse error" in err for err in loaded.script_errors)

    def test_inline_scripts_numbered_distinctly(self):
        net = Network()
        net.server_for("c.example").add_resource(
            "/", page(INERT_SCRIPT, WRITER_SCRIPT, FP_SCRIPT)
        )
        loaded = Browser(net).load("https://c.example/")
        assert loaded.executed_scripts == [
            "https://c.example/#inline",
            "https://c.example/#inline-2",
            "https://c.example/#inline-3",
        ]

    def test_parse_bomb_with_triage_matches_without(self, tmp_path):
        net, _ = make_network()
        targets = [CrawlTarget("bomb.example", 1, "top")]
        off = run_crawl(net, targets, label="control", static_triage=False)
        net2, _ = make_network()
        on = run_crawl(net2, targets, label="control", static_triage=True)
        assert on.observations == off.observations
