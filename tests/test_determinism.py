"""Determinism guarantees: the entire stack must be reproducible bit-for-bit.

The paper's methodology depends on determinism at several levels (identical
canvases across sites, stable fingerprints across visits); the reproduction
additionally promises identical *studies* across runs for a fixed seed.
"""

from repro.config import StudyScale
from repro.crawler import run_crawl
from repro.webgen import build_world


def _crawl_digest(world, n=150):
    dataset = run_crawl(world.network, world.all_targets[:n], label="det")
    digest = []
    for obs in dataset.observations:
        digest.append(
            (
                obs.domain,
                obs.success,
                obs.failure_reason,
                tuple(e.canvas_hash for e in obs.extractions),
                tuple((c.method, c.t_ms) for c in obs.calls),
            )
        )
    return digest


class TestDeterminism:
    def test_same_seed_same_world(self):
        scale = StudyScale(fraction=0.01, seed=555)
        a, b = build_world(scale), build_world(scale)
        assert {d: p.failure for d, p in a.plans.items()} == {
            d: p.failure for d, p in b.plans.items()
        }
        for domain in a.plans:
            pa, pb = a.plans[domain], b.plans[domain]
            assert [(d.kind, d.vendor, d.boutique_index, d.serving, d.gating) for d in pa.deployments] == [
                (d.kind, d.vendor, d.boutique_index, d.serving, d.gating) for d in pb.deployments
            ]
            assert pa.benign == pb.benign
        assert a.easylist_text == b.easylist_text
        assert a.disconnect.domains() == b.disconnect.domains()

    def test_same_world_same_crawl(self):
        scale = StudyScale(fraction=0.01, seed=556)
        world = build_world(scale)
        assert _crawl_digest(world) == _crawl_digest(world)

    def test_two_worlds_same_crawl_digest(self):
        scale = StudyScale(fraction=0.01, seed=557)
        a = _crawl_digest(build_world(scale))
        b = _crawl_digest(build_world(scale))
        assert a == b

    def test_different_seed_different_world(self):
        a = build_world(StudyScale(fraction=0.01, seed=1))
        b = build_world(StudyScale(fraction=0.01, seed=2))
        assert set(a.plans) != set(b.plans)
