"""Tests for the JS tokenizer."""

import pytest
from hypothesis import given, strategies as st

from repro.js.errors import JSSyntaxError
from repro.js.lexer import tokenize
from repro.js.tokens import TokenType


def kinds(source):
    return [(t.type, t.value) for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].type is TokenType.EOF

    def test_numbers(self):
        assert kinds("42 3.14 .5 1e3 2E-2 0xff") == [
            (TokenType.NUMBER, 42.0),
            (TokenType.NUMBER, 3.14),
            (TokenType.NUMBER, 0.5),
            (TokenType.NUMBER, 1000.0),
            (TokenType.NUMBER, 0.02),
            (TokenType.NUMBER, 255.0),
        ]

    def test_strings_both_quotes(self):
        assert kinds("""'a' "b" """) == [(TokenType.STRING, "a"), (TokenType.STRING, "b")]

    def test_string_escapes(self):
        assert kinds(r"'a\nb\t\\\' \x41 é'") == [(TokenType.STRING, "a\nb\t\\' A é")]

    def test_identifiers_and_keywords(self):
        out = kinds("var foo = function() {}")
        assert out[0] == (TokenType.KEYWORD, "var")
        assert out[1] == (TokenType.IDENT, "foo")
        assert out[3] == (TokenType.KEYWORD, "function")

    def test_dollar_and_underscore_idents(self):
        assert kinds("$a _b") == [(TokenType.IDENT, "$a"), (TokenType.IDENT, "_b")]

    def test_punctuator_longest_match(self):
        assert [v for _, v in kinds("=== == = => <= <")] == ["===", "==", "=", "=>", "<=", "<"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [(TokenType.IDENT, "a"), (TokenType.IDENT, "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [(TokenType.IDENT, "a"), (TokenType.IDENT, "b")]

    def test_block_comment_tracks_lines(self):
        toks = tokenize("/* a\nb\nc */ x")
        assert toks[0].line == 3

    def test_unterminated_block_comment(self):
        with pytest.raises(JSSyntaxError):
            tokenize("/* never closed")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(JSSyntaxError):
            tokenize("'abc")

    def test_newline_in_string(self):
        with pytest.raises(JSSyntaxError):
            tokenize("'a\nb'")

    def test_unexpected_char(self):
        with pytest.raises(JSSyntaxError):
            tokenize("var a = @;")


@given(st.floats(min_value=0, max_value=1e9, allow_nan=False).map(lambda x: round(x, 4)))
def test_number_roundtrip(x):
    toks = tokenize(repr(x))
    assert toks[0].type is TokenType.NUMBER
    assert toks[0].value == pytest.approx(x)


_safe_text = st.text(
    alphabet=st.characters(blacklist_characters="\\'\"\n\r", min_codepoint=32, max_codepoint=0x2FF),
    max_size=40,
)


@given(_safe_text)
def test_string_roundtrip(s):
    toks = tokenize('"' + s + '"')
    assert toks[0].type is TokenType.STRING
    assert toks[0].value == s


class TestTemplateLiterals:
    def test_plain_template(self):
        toks = kinds("`hello`")
        assert (TokenType.STRING, "hello") in toks

    def test_desugars_to_concatenation(self):
        values = [v for _, v in kinds("`a${x}b`")]
        assert values == ["(", "a", "+", "(", "x", ")", "+", "b", ")"]

    def test_multiline_allowed(self):
        toks = kinds("`line1\nline2`")
        assert (TokenType.STRING, "line1\nline2") in toks

    def test_unterminated_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("`never closed")

    def test_unterminated_interpolation_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("`a${1 + 2`")

    def test_nested_template(self):
        # Must lex without error; semantics covered by interpreter tests.
        tokenize("`outer ${`inner ${x}`}`")

    def test_escaped_backtick(self):
        toks = kinds(r"`tick \` here`")
        assert (TokenType.STRING, "tick ` here") in toks
