"""Units for the static script analyzer: CFG, dataflow, taint, verdicts.

The analyzer never executes a script — everything here checks that the
abstract pass alone recovers what the dynamic engine would observe: which
canvas APIs are reachable, whether readouts survive the paper's §3.2
exclusions, where tainted bytes flow, and when a script is provably inert.
"""

from repro import perf
from repro.js import nodes as N
from repro.js.parser import parse
from repro.js.static import (
    CLASS_BENIGN,
    CLASS_FP_LIKELY,
    CLASS_INERT,
    CLASS_PARSE_ERROR,
    analyze_program,
    build_cfg,
    classify,
    verdict_for_source,
)


def analyze(src):
    return analyze_program(parse(src))


def classed(src):
    classification, _excluded = classify(analyze(src))
    return classification


FP_SCRIPT = """
var c = document.createElement('canvas');
var ctx = c.getContext('2d');
ctx.fillText('fingerprint,<canvas> 1.0', 2, 15);
var data = c.toDataURL();
fetch('https://collect.example/?d=' + data);
"""


class TestCFG:
    def test_if_else_diamond(self):
        graph = build_cfg(parse("a(); if (x) { b(); } else { c(); } d();").body)
        entry = graph.blocks[1]
        assert len(entry.successors) == 2
        join_targets = {graph.blocks[s].successors[0] for s in entry.successors}
        assert len(join_targets) == 1  # both arms converge on d()

    def test_exit_block_is_zero(self):
        graph = build_cfg(parse("a();").body)
        assert graph.blocks[0].successors == []
        assert all(0 in b.successors or b.successors for b in graph.blocks[1:])

    def test_statements_after_return_are_dead(self):
        fn = parse("function f() { a(); return 1; dead(); }").body[0]
        graph = build_cfg(fn.body.body)
        live = list(graph.live_statements())
        assert len(live) == 2
        assert not any(
            isinstance(s, N.ExpressionStatement) and s.line > 1 for s in live
        ) or len(live) == 2

    def test_loop_detected_and_statements_collected(self):
        graph = build_cfg(parse("for (var i = 0; i < 3; i++) { work(); } after();").body)
        assert graph.has_loops
        assert len(graph.loop_statements) == 1

    def test_straight_line_has_no_loops(self):
        graph = build_cfg(parse("a(); b(); c();").body)
        assert not graph.has_loops
        assert graph.loop_statements == []


class TestApiProfile:
    def test_canvas_creation_and_draws_recorded(self):
        a = analyze(
            "var c = document.createElement('canvas');"
            "var x = c.getContext('2d');"
            "x.fillText('hi', 2, 2);"
            "var d = c.toDataURL();"
        )
        assert "createElement('canvas')" in a.api_profile
        assert "getContext" in a.api_profile
        assert "fillText" in a.api_profile
        assert "toDataURL" in a.api_profile
        assert a.text_draws and not a.geometry_draws
        assert len(a.readouts) == 1

    def test_no_canvas_means_no_mention(self):
        a = analyze("var total = 0; for (var i = 0; i < 5; i++) { total += i; }")
        assert not a.canvas_mention
        assert a.readouts == []

    def test_context_shares_allocation_site(self):
        a = analyze(
            "var c = document.createElement('canvas');"
            "c.width = 640; c.height = 480;"
            "var x = c.getContext('2d');"
            "x.fillRect(0, 0, 10, 10);"
            "var d = c.toDataURL();"
        )
        (site,) = a.readouts
        assert site.alloc.width == 640.0 and site.alloc.height == 480.0
        assert not site.alloc.small


class TestTaint:
    def test_readout_to_network_sink(self):
        assert analyze(FP_SCRIPT).taint_paths == {("toDataURL", "network")}

    def test_readout_to_storage_sink(self):
        src = FP_SCRIPT.replace(
            "fetch('https://collect.example/?d=' + data);",
            "localStorage.setItem('fp', data);",
        )
        assert analyze(src).taint_paths == {("toDataURL", "storage")}

    def test_readout_to_global_sink(self):
        src = FP_SCRIPT.replace(
            "fetch('https://collect.example/?d=' + data);",
            "window.__fp = data;",
        )
        assert analyze(src).taint_paths == {("toDataURL", "global")}

    def test_taint_survives_string_concatenation(self):
        src = FP_SCRIPT.replace(
            "fetch('https://collect.example/?d=' + data);",
            "var wrapped = 'v1:' + data + ':end';"
            "navigator.sendBeacon('/c', wrapped);",
        )
        assert ("toDataURL", "network") in analyze(src).taint_paths

    def test_interprocedural_readout_through_helper(self):
        a = analyze(
            "function grab(canvas) { return canvas.toDataURL(); }"
            "var c = document.createElement('canvas');"
            "var x = c.getContext('2d');"
            "x.fillText('q', 1, 1);"
            "navigator.sendBeacon('/c', grab(c));"
        )
        assert a.taint_paths == {("toDataURL", "network")}
        assert len(a.readouts) == 1

    def test_stored_but_uncalled_callback_still_counts(self):
        # A function expression assigned but never invoked may still run
        # later (event handlers); its effects must be accounted.
        a = analyze(
            "var handler = function() {"
            "  var c = document.createElement('canvas');"
            "  var x = c.getContext('2d');"
            "  x.fillText('z', 1, 1);"
            "  window.__out = c.toDataURL();"
            "};"
        )
        assert a.taint_paths == {("toDataURL", "global")}

    def test_untainted_network_call_is_not_a_taint_path(self):
        a = analyze("fetch('https://benign.example/ping');")
        assert a.taint_paths == set()


class TestExclusions:
    def test_lossy_format_excluded(self):
        src = FP_SCRIPT.replace("c.toDataURL()", "c.toDataURL('image/jpeg')")
        classification, excluded = classify(analyze(src))
        assert classification == CLASS_BENIGN
        assert "lossy-format" in excluded

    def test_small_canvas_excluded(self):
        classification, excluded = classify(
            analyze(
                "var c = document.createElement('canvas');"
                "c.width = 8; c.height = 8;"
                "var x = c.getContext('2d');"
                "x.fillRect(0, 0, 8, 8);"
                "var d = c.toDataURL();"
            )
        )
        assert classification == CLASS_BENIGN
        assert "small-canvas" in excluded

    def test_animation_excluded(self):
        classification, excluded = classify(
            analyze(
                "var c = document.createElement('canvas');"
                "var x = c.getContext('2d');"
                "function frame() {"
                "  x.save(); x.fillRect(0, 0, 10, 10); x.restore();"
                "  var d = c.toDataURL();"
                "}"
                "requestAnimationFrame(frame);"
            )
        )
        assert classification == CLASS_BENIGN
        assert "animation" in excluded

    def test_draw_without_readout_is_benign(self):
        assert (
            classed(
                "var c = document.createElement('canvas');"
                "var x = c.getContext('2d');"
                "x.fillRect(0, 0, 50, 50);"
            )
            == CLASS_BENIGN
        )

    def test_default_canvas_size_is_not_small(self):
        # HTML default 300x150 is over the threshold; a live text readout
        # on an unsized canvas stays fingerprinting-likely.
        assert classed(FP_SCRIPT) == CLASS_FP_LIKELY


class TestTermination:
    def test_literal_bounded_for_loop_terminates(self):
        a = analyze("var s = 0; for (var i = 0; i < 10; i++) { s += i; }")
        assert a.terminating()
        assert a.nonterm_reasons == []

    def test_while_loop_is_unproven(self):
        a = analyze("var s = 0; while (s < 10) { s += 1; }")
        assert not a.terminating()
        assert any("unbounded loop" in r for r in a.nonterm_reasons)

    def test_recursion_is_unproven(self):
        a = analyze("function r(n) { return r(n); } r(1);")
        assert not a.terminating()
        assert any("recursive" in r for r in a.nonterm_reasons)


class TestGlobalPools:
    def test_window_props_and_bare_globals_share_one_pool(self):
        a = analyze(
            "window.shared = 1; var v = window.other;"
            "bare = 2; var w = typeof missing;"
        )
        assert {"shared", "bare"} <= a.global_writes
        assert {"other", "missing"} <= a.global_reads

    def test_computed_window_access_reads_top(self):
        a = analyze("var k = 'se' + 'cret'; var v = window[k];")
        assert a.reads_top

    def test_typeof_missing_global_does_not_throw(self):
        a = analyze("var t = typeof definitelyMissing;")
        assert not a.may_throw()
        assert "definitelyMissing" in a.global_reads

    def test_bare_read_of_missing_global_may_throw(self):
        assert analyze("var v = definitelyMissing;").may_throw()


class TestVerdicts:
    def test_inert_script_is_skippable(self):
        v = verdict_for_source("var __t_inert_a = 41 + 1;")
        assert v.classification == CLASS_INERT
        assert v.skippable
        assert v.parse_error is None

    def test_fp_script_is_not_skippable(self):
        v = verdict_for_source(FP_SCRIPT)
        assert v.classification == CLASS_FP_LIKELY
        assert not v.skippable
        assert "canvas" in " ".join(v.skip_blockers)

    def test_unbounded_loop_blocks_skipping(self):
        v = verdict_for_source("var s = 0; while (s < 3) { s += 1; }")
        assert not v.skippable

    def test_parse_error_verdict(self):
        v = verdict_for_source("var x = " + "(" * 400 + "1" + ")" * 400 + ";")
        assert v.classification == CLASS_PARSE_ERROR
        assert v.parse_error is not None
        assert not v.skippable
        assert v.reads_top  # worst-case assumption: could read anything

    def test_verdict_cache_hits_on_second_lookup(self):
        src = "var __t_cache_probe = 1 + 2 + 3;"
        before = perf.PERF.snapshot().get("js.static", {})
        verdict_for_source(src)
        mid = perf.PERF.snapshot().get("js.static", {})
        again = verdict_for_source(src)
        after = perf.PERF.snapshot().get("js.static", {})
        assert mid.get("misses", 0) - before.get("misses", 0) == 1
        assert after.get("hits", 0) - mid.get("hits", 0) == 1
        assert again.classification == CLASS_INERT

    def test_signature_captures_banner_and_constants(self):
        v = verdict_for_source(
            "/*! AcmeMetrics v3.1 (c) Acme Corp */\n"
            "var banner_payload = 'a-long-constant-string-for-matching';\n"
        )
        joined = " ".join(v.signature)
        assert "AcmeMetrics" in joined
        assert "a-long-constant-string-for-matching" in joined

    def test_to_row_is_json_friendly(self):
        import json

        row = verdict_for_source(FP_SCRIPT).to_row()
        assert json.loads(json.dumps(row)) == row
        assert row["classification"] == CLASS_FP_LIKELY
