"""Parser-level tests: AST structure, precedence, and error reporting."""

import pytest
from hypothesis import given, strategies as st

from repro.js import nodes as N
from repro.js.errors import JSSyntaxError
from repro.js.parser import parse


def first_stmt(src):
    return parse(src).body[0]


def expr_of(src):
    stmt = first_stmt(src)
    assert isinstance(stmt, N.ExpressionStatement)
    return stmt.expression


class TestPrecedence:
    def test_multiplication_binds_tighter(self):
        e = expr_of("1 + 2 * 3;")
        assert isinstance(e, N.BinaryOp) and e.op == "+"
        assert isinstance(e.right, N.BinaryOp) and e.right.op == "*"

    def test_comparison_below_additive(self):
        e = expr_of("a + 1 < b - 2;")
        assert e.op == "<"

    def test_logical_or_lowest(self):
        e = expr_of("a && b || c;")
        assert isinstance(e, N.LogicalOp) and e.op == "||"
        assert isinstance(e.left, N.LogicalOp) and e.left.op == "&&"

    def test_assignment_right_associative(self):
        e = expr_of("a = b = 1;")
        assert isinstance(e, N.AssignmentExpression)
        assert isinstance(e.value, N.AssignmentExpression)

    def test_conditional_nests_in_assignment(self):
        e = expr_of("x = a ? 1 : 2;")
        assert isinstance(e.value, N.ConditionalExpression)

    def test_unary_binds_tighter_than_binary(self):
        e = expr_of("-a * b;")
        assert e.op == "*"
        assert isinstance(e.left, N.UnaryOp)

    def test_member_call_chain(self):
        e = expr_of("a.b.c(1).d;")
        assert isinstance(e, N.MemberExpression) and e.prop == "d"
        assert isinstance(e.obj, N.CallExpression)

    def test_computed_member(self):
        e = expr_of("a[i + 1];")
        assert isinstance(e, N.MemberExpression) and e.computed
        assert isinstance(e.prop, N.BinaryOp)


class TestStatements:
    def test_var_declaration_multi(self):
        stmt = first_stmt("var a = 1, b, c = 'x';")
        assert isinstance(stmt, N.VariableDeclaration)
        assert [d.name for d in stmt.declarations] == ["a", "b", "c"]
        assert stmt.declarations[1].init is None

    def test_keyword_as_property_name(self):
        e = expr_of("obj.new;")
        assert e.prop == "new"

    def test_for_parts_optional(self):
        stmt = first_stmt("for (;;) { break; }")
        assert isinstance(stmt, N.ForStatement)
        assert stmt.init is None and stmt.test is None and stmt.update is None

    def test_for_of(self):
        stmt = first_stmt("for (var x of items) {}")
        assert isinstance(stmt, N.ForOfStatement)
        assert stmt.name == "x"

    def test_try_catch_finally(self):
        stmt = first_stmt("try { a(); } catch (e) { b(); } finally { c(); }")
        assert isinstance(stmt, N.TryStatement)
        assert stmt.param == "e"
        assert stmt.finalizer is not None

    def test_catch_without_binding(self):
        stmt = first_stmt("try { a(); } catch { b(); }")
        assert stmt.param is None and stmt.handler is not None

    def test_asi_before_close_brace(self):
        prog = parse("function f() { return 1 }")
        assert isinstance(prog.body[0], N.FunctionDeclaration)

    def test_asi_at_eof(self):
        assert isinstance(first_stmt("var x = 1"), N.VariableDeclaration)

    def test_object_literal_key_kinds(self):
        e = expr_of('x = {plain: 1, "quoted key": 2, 42: 3, for: 4};')
        keys = [k for k, _ in e.value.properties]
        assert keys == ["plain", "quoted key", "42", "for"]

    def test_empty_statement(self):
        assert isinstance(first_stmt(";"), N.EmptyStatement)


class TestArrows:
    def test_single_param(self):
        e = expr_of("f = x => x + 1;")
        assert isinstance(e.value, N.FunctionExpression) and e.value.is_arrow
        assert e.value.params == ["x"]

    def test_paren_params(self):
        e = expr_of("f = (a, b) => a * b;")
        assert e.value.params == ["a", "b"]

    def test_zero_params(self):
        e = expr_of("f = () => 42;")
        assert e.value.params == []

    def test_parenthesized_expr_not_arrow(self):
        e = expr_of("(a + b) * 2;")
        assert isinstance(e, N.BinaryOp) and e.op == "*"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "var = 1;",
            "var a = ;",
            "if (x { }",
            "function () {}",   # declaration requires a name
            "a +;",
            "{ unclosed",
            "try { }",          # try needs catch or finally
            "1 = 2;",           # invalid assignment target
            "do { } until (x);",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(JSSyntaxError):
            parse(bad)

    def test_error_carries_line(self):
        with pytest.raises(JSSyntaxError) as err:
            parse("var a = 1;\nvar b = ;\n")
        assert err.value.line == 2


_number = st.integers(0, 999).map(str)
_ident = st.sampled_from(["a", "b", "foo", "x1"])
_atom = st.one_of(_number, _ident)


@st.composite
def _expressions(draw, depth=3):
    if depth == 0:
        return draw(_atom)
    left = draw(_expressions(depth=depth - 1))
    right = draw(_expressions(depth=depth - 1))
    op = draw(st.sampled_from(["+", "-", "*", "/", "&&", "||", "<", "==="]))
    return f"({left} {op} {right})"


@given(_expressions())
def test_generated_expressions_parse(src):
    prog = parse(f"var r = {src};")
    assert isinstance(prog.body[0], N.VariableDeclaration)
