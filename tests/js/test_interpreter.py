"""End-to-end tests for the JS engine (parser + interpreter + builtins)."""

import math

import pytest

from repro.js import Interpreter, JSRuntimeError, JSSyntaxError, UNDEFINED
from repro.js.values import JSObject, NativeFunction


@pytest.fixture
def interp():
    return Interpreter()


def run(interp, src):
    return interp.run(src)


class TestExpressions:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("1 + 2;", 3.0),
            ("2 * 3 + 4;", 10.0),
            ("2 + 3 * 4;", 14.0),
            ("(2 + 3) * 4;", 20.0),
            ("10 / 4;", 2.5),
            ("7 % 3;", 1.0),
            ("-5 + 1;", -4.0),
            ("'a' + 'b';", "ab"),
            ("'n=' + 5;", "n=5"),
            ("1 + '2';", "12"),
            ("'3' * '2';", 6.0),
            ("1 < 2;", True),
            ("'a' < 'b';", True),
            ("1 === 1;", True),
            ("1 === '1';", False),
            ("1 == '1';", True),
            ("null == undefined;", True),
            ("null === undefined;", False),
            ("!0;", True),
            ("typeof 'x';", "string"),
            ("typeof 5;", "number"),
            ("typeof undefined;", "undefined"),
            ("typeof {};", "object"),
            ("typeof function(){};", "function"),
            ("typeof missingVar;", "undefined"),
            ("true && 'yes';", "yes"),
            ("false || 'fallback';", "fallback"),
            ("0 || '';", ""),
            ("1 ? 'a' : 'b';", "a"),
            ("5 & 3;", 1.0),
            ("5 | 3;", 7.0),
            ("5 ^ 3;", 6.0),
            ("1 << 4;", 16.0),
            ("-8 >> 1;", -4.0),
            ("~5;", -6.0),
        ],
    )
    def test_eval(self, interp, src, expected):
        assert run(interp, src) == expected

    def test_nan_comparisons(self, interp):
        assert run(interp, "NaN === NaN;") is False
        assert run(interp, "NaN < 1;") is False
        assert run(interp, "isNaN(NaN);") is True

    def test_division_by_zero(self, interp):
        assert run(interp, "1 / 0;") == math.inf
        assert math.isnan(run(interp, "0 / 0;"))


class TestVariablesAndScope:
    def test_var_declaration(self, interp):
        assert run(interp, "var x = 5; x * 2;") == 10.0

    def test_multiple_declarators(self, interp):
        assert run(interp, "var a = 1, b = 2; a + b;") == 3.0

    def test_uninitialized_is_undefined(self, interp):
        assert run(interp, "var x; x;") is UNDEFINED

    def test_undeclared_reference_throws(self, interp):
        with pytest.raises(JSRuntimeError):
            run(interp, "missing + 1;")

    def test_closures(self, interp):
        src = """
        function counter() {
            var n = 0;
            return function() { n = n + 1; return n; };
        }
        var c = counter();
        c(); c(); c();
        """
        assert run(interp, src) == 3.0

    def test_block_scoping_of_let_is_lexical(self, interp):
        src = "var x = 1; { let x = 2; } x;"
        assert run(interp, src) == 1.0

    def test_globals_persist_across_runs(self, interp):
        run(interp, "var shared = 41;")
        assert run(interp, "shared + 1;") == 42.0

    def test_compound_assignment(self, interp):
        assert run(interp, "var x = 1; x += 4; x *= 2; x;") == 10.0

    def test_increment_decrement(self, interp):
        assert run(interp, "var x = 5; x++; ++x; x--; x;") == 6.0
        assert run(interp, "var y = 5; y++;") == 5.0
        assert run(interp, "var z = 5; ++z;") == 6.0


class TestControlFlow:
    def test_if_else(self, interp):
        assert run(interp, "var r; if (1 > 2) { r = 'a'; } else { r = 'b'; } r;") == "b"

    def test_for_loop(self, interp):
        assert run(interp, "var s = 0; for (var i = 1; i <= 10; i++) { s += i; } s;") == 55.0

    def test_while_with_break(self, interp):
        src = "var i = 0; while (true) { i++; if (i >= 7) break; } i;"
        assert run(interp, src) == 7.0

    def test_continue(self, interp):
        src = "var s = 0; for (var i = 0; i < 10; i++) { if (i % 2) continue; s += i; } s;"
        assert run(interp, src) == 20.0

    def test_do_while(self, interp):
        assert run(interp, "var i = 10; do { i++; } while (i < 5); i;") == 11.0

    def test_for_of_array(self, interp):
        assert run(interp, "var s = ''; for (var ch of ['a','b','c']) { s += ch; } s;") == "abc"

    def test_for_of_string(self, interp):
        assert run(interp, "var n = 0; for (var c of 'hello') { n++; } n;") == 5.0

    def test_nested_loops_break_inner_only(self, interp):
        src = """
        var count = 0;
        for (var i = 0; i < 3; i++) {
            for (var j = 0; j < 10; j++) { if (j == 2) break; count++; }
        }
        count;
        """
        assert run(interp, src) == 6.0


class TestFunctions:
    def test_declaration_and_call(self, interp):
        assert run(interp, "function add(a, b) { return a + b; } add(2, 3);") == 5.0

    def test_hoisting(self, interp):
        assert run(interp, "var r = f(); function f() { return 9; } r;") == 9.0

    def test_missing_args_are_undefined(self, interp):
        assert run(interp, "function f(a, b) { return typeof b; } f(1);") == "undefined"

    def test_arguments_object(self, interp):
        assert run(interp, "function f() { return arguments.length; } f(1, 2, 3);") == 3.0

    def test_function_expression(self, interp):
        assert run(interp, "var f = function(x) { return x * x; }; f(4);") == 16.0

    def test_arrow_expression_body(self, interp):
        assert run(interp, "var sq = x => x * x; sq(6);") == 36.0

    def test_arrow_params_block_body(self, interp):
        assert run(interp, "var f = (a, b) => { return a - b; }; f(9, 4);") == 5.0

    def test_zero_arg_arrow(self, interp):
        assert run(interp, "var f = () => 42; f();") == 42.0

    def test_recursion(self, interp):
        assert run(interp, "function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); } fib(12);") == 144.0

    def test_this_in_method_call(self, interp):
        src = "var obj = { x: 7, getX: function() { return this.x; } }; obj.getX();"
        assert run(interp, src) == 7.0

    def test_new_with_constructor(self, interp):
        src = "function Point(x, y) { this.x = x; this.y = y; } var p = new Point(3, 4); p.x + p.y;"
        assert run(interp, src) == 7.0

    def test_call_apply_bind(self, interp):
        src = "function who() { return this.name; } var o = {name: 'a'};"
        assert run(interp, src + "who.call(o);") == "a"
        assert run(interp, "who.apply(o, []);") == "a"
        assert run(interp, "var b = who.bind(o); b();") == "a"

    def test_calling_non_function_raises(self, interp):
        with pytest.raises(JSRuntimeError):
            run(interp, "var x = 5; x();")


class TestObjectsAndArrays:
    def test_object_literal_access(self, interp):
        assert run(interp, "var o = {a: 1, 'b c': 2}; o.a + o['b c'];") == 3.0

    def test_nested_objects(self, interp):
        assert run(interp, "var o = {a: {b: {c: 'deep'}}}; o.a.b.c;") == "deep"

    def test_property_assignment(self, interp):
        assert run(interp, "var o = {}; o.x = 1; o['y'] = 2; o.x + o.y;") == 3.0

    def test_delete(self, interp):
        assert run(interp, "var o = {a: 1}; delete o.a; typeof o.a;") == "undefined"

    def test_in_operator(self, interp):
        assert run(interp, "var o = {a: 1}; 'a' in o;") is True
        assert run(interp, "'b' in {a: 1};") is False

    def test_array_literal_and_index(self, interp):
        assert run(interp, "var a = [10, 20, 30]; a[1];") == 20.0

    def test_array_length_and_growth(self, interp):
        assert run(interp, "var a = []; a[4] = 1; a.length;") == 5.0

    def test_array_push_pop(self, interp):
        assert run(interp, "var a = [1]; a.push(2, 3); a.pop(); a.join('-');") == "1-2"

    def test_array_map_filter_reduce(self, interp):
        assert run(interp, "[1,2,3,4].map(x => x * 2).filter(x => x > 4).reduce((a, b) => a + b, 0);") == 14.0

    def test_array_indexOf_includes(self, interp):
        assert run(interp, "[1,2,3].indexOf(2);") == 1.0
        assert run(interp, "[1,2,3].includes(4);") is False

    def test_array_slice_splice(self, interp):
        assert run(interp, "[0,1,2,3,4].slice(1, 3).join(',');") == "1,2"
        assert run(interp, "var a = [1,2,3,4]; a.splice(1, 2); a.join(',');") == "1,4"

    def test_array_sort(self, interp):
        assert run(interp, "[3,1,2].sort(function(a,b){return a-b;}).join('');") == "123"

    def test_object_keys(self, interp):
        assert run(interp, "Object.keys({a: 1, b: 2}).join(',');") == "a,b"


class TestStringsAndBuiltins:
    def test_string_methods(self, interp):
        assert run(interp, "'Hello World'.toLowerCase();") == "hello world"
        assert run(interp, "'abcdef'.slice(1, 3);") == "bc"
        assert run(interp, "'a,b,c'.split(',').length;") == 3.0
        assert run(interp, "'hello'.charCodeAt(0);") == 104.0
        assert run(interp, "'  pad  '.trim();") == "pad"
        assert run(interp, "'abc'.indexOf('c');") == 2.0
        assert run(interp, "'ha'.repeat(3);") == "hahaha"
        assert run(interp, "'abc'.length;") == 3.0
        assert run(interp, "'abc'[1];") == "b"

    def test_string_fromCharCode(self, interp):
        assert run(interp, "String.fromCharCode(72, 105);") == "Hi"

    def test_math(self, interp):
        assert run(interp, "Math.max(1, 9, 4);") == 9.0
        assert run(interp, "Math.floor(2.7);") == 2.0
        assert run(interp, "Math.abs(-3);") == 3.0
        assert run(interp, "Math.pow(2, 10);") == 1024.0
        assert run(interp, "Math.sqrt(16);") == 4.0

    def test_math_random_in_range_and_deterministic(self, interp):
        vals = [run(interp, "Math.random();") for _ in range(10)]
        assert all(0 <= v < 1 for v in vals)
        other = Interpreter()
        assert [other.run("Math.random();") for _ in range(10)] == vals

    def test_parse_int_float(self, interp):
        assert run(interp, "parseInt('42px');") == 42.0
        assert run(interp, "parseInt('ff', 16);") == 255.0
        assert run(interp, "parseFloat('3.5rem');") == 3.5
        assert math.isnan(run(interp, "parseInt('nope');"))

    def test_json_roundtrip(self, interp):
        assert run(interp, "JSON.stringify({a: [1, 'x', null], b: true});") == '{"a":[1,"x",null],"b":true}'
        assert run(interp, "JSON.parse('{\"k\": [1, 2]}').k[1];") == 2.0

    def test_number_toFixed_toString(self, interp):
        assert run(interp, "(3.14159).toFixed(2);") == "3.14"
        assert run(interp, "(255).toString(16);") == "ff"

    def test_console_log_captured(self, interp):
        run(interp, "console.log('hello', 42);")
        assert interp.console_log == ["hello 42"]

    def test_btoa_atob(self, interp):
        assert run(interp, "btoa('abc');") == "YWJj"
        assert run(interp, "atob('YWJj');") == "abc"


class TestExceptions:
    def test_try_catch(self, interp):
        assert run(interp, "var r; try { throw 'boom'; } catch (e) { r = e; } r;") == "boom"

    def test_finally_runs(self, interp):
        src = "var log = ''; try { log += 'a'; } finally { log += 'b'; } log;"
        assert run(interp, src) == "ab"

    def test_catch_runtime_error_of_throw_only(self, interp):
        assert run(interp, "var r = 'ok'; try { throw new Error('x'); } catch (e) { r = e.message; } r;") == "x"

    def test_uncaught_throw_becomes_runtime_error(self, interp):
        with pytest.raises(JSRuntimeError):
            run(interp, "throw 'unhandled';")

    def test_member_of_undefined_raises(self, interp):
        with pytest.raises(JSRuntimeError):
            run(interp, "var u; u.x;")


class TestHostIntegration:
    def test_native_function(self, interp):
        calls = []

        def hook(i, this, args):
            calls.append(args)
            return 99.0

        interp.native("probe", hook)
        assert run(interp, "probe(1, 'two');") == 99.0
        assert calls == [[1.0, "two"]]

    def test_host_object_method_gets_this(self, interp):
        class Host(JSObject):
            pass

        host = Host()
        seen = []
        host.set("poke", NativeFunction(lambda i, t, a: seen.append(t) or UNDEFINED, "poke"))
        interp.define_global("host", host)
        run(interp, "host.poke();")
        assert seen == [host]

    def test_current_script_tracking(self, interp):
        observed = []
        interp.native("report", lambda i, t, a: observed.append(i.current_script) or UNDEFINED)
        interp.run("report();", script_url="https://x.com/a.js")
        interp.run("report();", script_url="https://x.com/b.js")
        assert observed == ["https://x.com/a.js", "https://x.com/b.js"]

    def test_step_budget(self):
        small = Interpreter(step_budget=1000)
        with pytest.raises(JSRuntimeError):
            small.run("while (true) {}")

    def test_syntax_error_reported(self, interp):
        with pytest.raises(JSSyntaxError):
            run(interp, "var = 5;")


class TestRealisticScripts:
    def test_string_builder_loop(self, interp):
        src = """
        function build() {
            var parts = [];
            for (var i = 0; i < 5; i++) { parts.push('v' + i); }
            return parts.join('|');
        }
        build();
        """
        assert run(interp, src) == "v0|v1|v2|v3|v4"

    def test_iife_module_pattern(self, interp):
        src = """
        var api = (function() {
            var secret = 21;
            return { double: function() { return secret * 2; } };
        })();
        api.double();
        """
        assert run(interp, src) == 42.0

    def test_simple_hash_function(self, interp):
        src = """
        function hash(str) {
            var h = 0;
            for (var i = 0; i < str.length; i++) {
                h = ((h << 5) - h + str.charCodeAt(i)) & 0x7fffffff;
            }
            return h;
        }
        hash('canvas-fingerprint');
        """
        result = run(interp, src)
        assert isinstance(result, float) and result == int(result) and result >= 0


class TestTemplateLiterals:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("`plain`;", "plain"),
            ("var n = 7; `n is ${n}`;", "n is 7"),
            ("`${1}${2}${3}`;", "123"),
            ("`sum=${1 + 2 * 3}`;", "sum=7"),
            ("var o = {k: 'v'}; `k -> ${o.k}`;", "k -> v"),
            ("`${'a'.toUpperCase()}!`;", "A!"),
            ("`${ `x${1}` }y`;", "x1y"),
            ("`always ${1} string`.length;", 15.0),
        ],
    )
    def test_cases(self, interp, src, expected):
        assert run(interp, src) == expected

    def test_template_in_function(self, interp):
        src = """
        function greet(name) { return `Hello, ${name}!`; }
        greet('fingerprinter');
        """
        assert run(interp, src) == "Hello, fingerprinter!"


class TestSwitch:
    def test_basic_case_match(self, interp):
        src = """
        var r;
        switch (2) {
          case 1: r = 'one'; break;
          case 2: r = 'two'; break;
          case 3: r = 'three'; break;
        }
        r;
        """
        assert run(interp, src) == "two"

    def test_fallthrough_without_break(self, interp):
        src = """
        var log = '';
        switch (1) {
          case 1: log += 'a';
          case 2: log += 'b'; break;
          case 3: log += 'c';
        }
        log;
        """
        assert run(interp, src) == "ab"

    def test_default_clause(self, interp):
        src = """
        var r;
        switch ('nope') {
          case 'x': r = 1; break;
          default: r = 'fallback';
        }
        r;
        """
        assert run(interp, src) == "fallback"

    def test_default_falls_through(self, interp):
        src = """
        var log = '';
        switch (9) {
          case 1: log += 'a'; break;
          default: log += 'd';
          case 2: log += 'b';
        }
        log;
        """
        assert run(interp, src) == "db"

    def test_strict_equality_matching(self, interp):
        src = """
        var r = 'none';
        switch ('1') {
          case 1: r = 'number'; break;
          case '1': r = 'string'; break;
        }
        r;
        """
        assert run(interp, src) == "string"

    def test_expressions_as_case_tests(self, interp):
        src = """
        var x = 10;
        var r;
        switch (x) {
          case 5 + 5: r = 'computed'; break;
          default: r = 'no';
        }
        r;
        """
        assert run(interp, src) == "computed"

    def test_switch_inside_function_with_return(self, interp):
        src = """
        function classify(code) {
          switch (code) {
            case 200: return 'ok';
            case 404: return 'missing';
            default: return 'other';
          }
        }
        classify(200) + '/' + classify(404) + '/' + classify(500);
        """
        assert run(interp, src) == "ok/missing/other"

    def test_multiple_defaults_rejected(self, interp):
        with pytest.raises(JSSyntaxError):
            run(interp, "switch (1) { default: break; default: break; }")
