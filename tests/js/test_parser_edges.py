"""Parser/engine edge cases surfaced by the static-analysis work.

Real vendor scripts exercise all four shapes below; the static CFG pass
must agree with the engine on every one of them, so each case is pinned
here at the parser level and end-to-end through the interpreter.
"""

from repro.js import Interpreter
from repro.js import nodes as N
from repro.js.parser import parse


def run(src):
    return Interpreter().run(src)


class TestNestedFunctionRedeclaration:
    def test_last_declaration_wins(self):
        assert (
            run(
                "function f() {"
                "  function g() { return 1; }"
                "  function g() { return 2; }"
                "  return g();"
                "} f();"
            )
            == 2.0
        )

    def test_redeclaration_hoists_before_first_call(self):
        # Both declarations hoist; a call before either body line sees the
        # last one, exactly like a real engine.
        assert (
            run(
                "function h() {"
                "  var r = g();"
                "  function g() { return 'first'; }"
                "  function g() { return 'last'; }"
                "  return r;"
                "} h();"
            )
            == "last"
        )

    def test_top_level_redeclaration(self):
        assert run("function t() { return 'a'; } function t() { return 'b'; } t();") == "b"

    def test_parser_keeps_both_declarations(self):
        block = parse("function d(){ function e(){} function e(){} }").body[0].body
        inner = [s for s in block.body if isinstance(s, N.FunctionDeclaration)]
        assert [f.name for f in inner] == ["e", "e"]


class TestUnreachableCode:
    def test_statements_after_return_do_not_run(self):
        # `missing.deref` would throw if reached.
        assert run("function f() { return 1; var boom = missing.deref; } f();") == 1.0

    def test_statements_after_throw_do_not_run(self):
        assert (
            run(
                "var hit = 0;"
                "try { throw 'x'; hit = 1; } catch (e) {}"
                "hit;"
            )
            == 0.0
        )

    def test_unreachable_var_still_hoists(self):
        # Declaration hoists even when the assignment is dead.
        assert (
            run(
                "function f() { return typeof later; var later = 1; } f();"
            )
            == "undefined"
        )

    def test_parser_accepts_dead_statements(self):
        block = parse("function f() { return 1; dead(); }").body[0].body
        assert isinstance(block.body[0], N.ReturnStatement)
        assert isinstance(block.body[1], N.ExpressionStatement)


class TestForEmptyClauses:
    def test_all_clauses_empty(self):
        assert run("var n = 0; for (;;) { n++; if (n > 3) break; } n;") == 4.0

    def test_missing_init_and_update(self):
        assert run("var i = 0; for (; i < 3;) { i++; } i;") == 3.0

    def test_missing_test_with_break(self):
        assert (
            run("var s = 0; for (var i = 0;; i++) { if (i >= 4) break; s += i; } s;")
            == 6.0
        )

    def test_parser_leaves_empty_clauses_none(self):
        stmt = parse("for (;;) { break; }").body[0]
        assert isinstance(stmt, N.ForStatement)
        assert stmt.init is None and stmt.test is None and stmt.update is None

    def test_continue_in_empty_clause_loop(self):
        assert (
            run(
                "var odd = 0;"
                "for (var i = 0;; i++) {"
                "  if (i >= 6) break;"
                "  if (i % 2 === 0) continue;"
                "  odd++;"
                "} odd;"
            )
            == 3.0
        )


class TestLogicalShortCircuitStatement:
    def test_and_guard_statement(self):
        assert (
            run(
                "var calls = 0;"
                "function inc() { calls++; }"
                "false && inc();"
                "true && inc();"
                "calls;"
            )
            == 1.0
        )

    def test_or_default_statement(self):
        assert run("var x; x || (x = 'set'); x || (x = 'again'); x;") == "set"

    def test_guard_prevents_throw(self):
        # The classic feature-detect idiom: the RHS would throw when the
        # guard is falsy, so short-circuiting is load-bearing.
        assert (
            run(
                "var obj = null;"
                "obj && obj.method();"
                "'survived';"
            )
            == "survived"
        )

    def test_parses_as_expression_statement(self):
        stmt = parse("a && b();").body[0]
        assert isinstance(stmt, N.ExpressionStatement)
        assert isinstance(stmt.expression, N.LogicalOp)

    def test_chained_guards(self):
        assert (
            run(
                "var w = {canvas: {draw: function() { return 'drew'; }}};"
                "var out = '';"
                "w && w.canvas && (out = w.canvas.draw());"
                "out;"
            )
            == "drew"
        )
