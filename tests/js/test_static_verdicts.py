"""Static-verdict gate over the study's real script corpus.

The acceptance bar from the static-analysis issue: every one of the 13
vendor fingerprinting scripts must classify ``fingerprinting-likely``
purely statically, and every benign-canvas / animation script must land in
``canvas-benign`` or ``canvas-unknown`` — never ``fingerprinting-likely``.
CI runs this module as its own job, so a classifier regression on any
single vendor fails loudly by name.
"""

import pytest

from repro.js.static import (
    CLASS_BENIGN,
    CLASS_FP_LIKELY,
    CLASS_INERT,
    CLASS_UNKNOWN,
    verdict_for_source,
)
from repro.webgen import scripts as S
from repro.webgen.vendors import VENDOR_SPECS


def vendor_sources():
    for spec in VENDOR_SPECS:
        source = spec.source("customer.example") if spec.per_site else spec.source()
        yield spec.name, source


VENDORS = list(vendor_sources())

#: Benign corpus: canvas users the paper's §3.2 exclusions clear.
BENIGN = [
    ("webp-check", S.webp_check_script()),
    ("emoji-check", S.emoji_check_script()),
    ("small-canvas", S.small_canvas_script(8, "#204060")),
    ("animation-tool", S.animation_tool_script(7)),
    ("thumbnail-generator", S.thumbnail_generator_script(11)),
]


class TestVendorScripts:
    def test_thirteen_vendors_in_corpus(self):
        assert len(VENDORS) == 13

    @pytest.mark.parametrize("name,source", VENDORS, ids=[n for n, _ in VENDORS])
    def test_vendor_is_fingerprinting_likely(self, name, source):
        verdict = verdict_for_source(source, script_url=f"https://{name}.example/fp.js")
        assert verdict.classification == CLASS_FP_LIKELY, (
            f"{name}: got {verdict.classification}, excluded={verdict.excluded}"
        )

    @pytest.mark.parametrize("name,source", VENDORS, ids=[n for n, _ in VENDORS])
    def test_vendor_readout_is_tainted(self, name, source):
        verdict = verdict_for_source(source)
        assert verdict.taint_paths, f"{name}: readout never reaches a sink"

    @pytest.mark.parametrize("name,source", VENDORS, ids=[n for n, _ in VENDORS])
    def test_vendor_is_never_skippable(self, name, source):
        assert not verdict_for_source(source).skippable


class TestBenignCorpus:
    @pytest.mark.parametrize("name,source", BENIGN, ids=[n for n, _ in BENIGN])
    def test_benign_canvas_is_not_fingerprinting(self, name, source):
        verdict = verdict_for_source(source, script_url=f"https://{name}.example/app.js")
        assert verdict.classification in (CLASS_BENIGN, CLASS_UNKNOWN), (
            f"{name}: got {verdict.classification}"
        )

    def test_analytics_filler_is_inert(self):
        verdict = verdict_for_source(S.analytics_filler_script(3))
        assert verdict.classification == CLASS_INERT
        assert verdict.skippable

    def test_boutique_font_prober_is_fingerprinting(self):
        # The long-tail boutique fingerprinter: small per-font canvases but
        # live toDataURL readouts shipped to a global — correctly flagged.
        verdict = verdict_for_source(S.font_prober_script(4, 17))
        assert verdict.classification == CLASS_FP_LIKELY


class TestCorpusStability:
    def test_bare_fingerprint_scripts_are_fp_likely(self):
        pangram = "How vexingly quick daft zebras jump!"
        for name, source in [
            ("text", S.text_fingerprint_script(pangram, 5)),
            ("geometry", S.geometry_fingerprint_script(5)),
            (
                "combined",
                S.combined_fingerprint_script(pangram, "#f60", "#069"),
            ),
        ]:
            verdict = verdict_for_source(source)
            assert verdict.classification == CLASS_FP_LIKELY, name
