"""Property and unit tests for the JS value model and conversions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.js.values import (
    NULL,
    UNDEFINED,
    JSArray,
    JSObject,
    NativeFunction,
    js_equals_loose,
    js_equals_strict,
    js_to_number,
    js_to_string,
    js_truthy,
    js_type_of,
)


class TestSingletons:
    def test_undefined_singleton(self):
        from repro.js.values import JSUndefined

        assert JSUndefined() is UNDEFINED

    def test_null_singleton(self):
        from repro.js.values import JSNull

        assert JSNull() is NULL

    def test_falsiness(self):
        assert not UNDEFINED and not NULL


class TestToString:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (UNDEFINED, "undefined"),
            (NULL, "null"),
            (True, "true"),
            (False, "false"),
            (5.0, "5"),
            (5.5, "5.5"),
            (-0.25, "-0.25"),
            (float("nan"), "NaN"),
            (float("inf"), "Infinity"),
            (float("-inf"), "-Infinity"),
            ("already", "already"),
        ],
    )
    def test_cases(self, value, expected):
        assert js_to_string(value) == expected

    def test_array_join_semantics(self):
        assert js_to_string(JSArray([1.0, "x", NULL, UNDEFINED])) == "1,x,,"

    def test_object(self):
        assert js_to_string(JSObject()) == "[object Object]"

    def test_integral_floats_have_no_decimal(self):
        assert js_to_string(1e15) == "1000000000000000"


class TestToNumber:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (NULL, 0.0),
            (True, 1.0),
            (False, 0.0),
            ("", 0.0),
            ("  42 ", 42.0),
            ("3.5", 3.5),
            ("0x10", 16.0),
        ],
    )
    def test_cases(self, value, expected):
        assert js_to_number(value) == expected

    @pytest.mark.parametrize("value", [UNDEFINED, "not a number", JSObject()])
    def test_nan_cases(self, value):
        assert math.isnan(js_to_number(value))

    def test_array_coercion(self):
        assert js_to_number(JSArray([])) == 0.0
        assert js_to_number(JSArray([7.0])) == 7.0
        assert math.isnan(js_to_number(JSArray([1.0, 2.0])))


class TestTypeOf:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (UNDEFINED, "undefined"),
            (NULL, "object"),
            (True, "boolean"),
            (1.5, "number"),
            ("s", "string"),
            (JSObject(), "object"),
            (JSArray(), "object"),
            (NativeFunction(lambda i, t, a: None, "f"), "function"),
        ],
    )
    def test_cases(self, value, expected):
        assert js_type_of(value) == expected


class TestEquality:
    def test_strict_nan(self):
        assert not js_equals_strict(float("nan"), float("nan"))

    def test_strict_object_identity(self):
        a = JSObject()
        assert js_equals_strict(a, a)
        assert not js_equals_strict(a, JSObject())

    def test_loose_null_undefined(self):
        assert js_equals_loose(NULL, UNDEFINED)
        assert not js_equals_loose(NULL, 0.0)
        assert not js_equals_loose(UNDEFINED, "")

    def test_loose_number_string(self):
        assert js_equals_loose(1.0, "1")
        assert js_equals_loose("2.5", 2.5)
        assert not js_equals_loose(1.0, "one")

    def test_loose_boolean_coercion(self):
        assert js_equals_loose(True, 1.0)
        assert js_equals_loose(False, "0")

    def test_loose_object_to_primitive(self):
        assert js_equals_loose(JSArray([5.0]), "5")


class TestArrayModel:
    def test_length_grows_on_index_set(self):
        a = JSArray()
        a.set("4", "x")
        assert a.get("length") == 5.0
        assert a.get("2") is UNDEFINED

    def test_length_truncates(self):
        a = JSArray([1.0, 2.0, 3.0])
        a.set("length", 1.0)
        assert a.elements == [1.0]

    def test_length_extends(self):
        a = JSArray([1.0])
        a.set("length", 3.0)
        assert len(a.elements) == 3

    def test_non_index_property(self):
        a = JSArray()
        a.set("custom", 9.0)
        assert a.get("custom") == 9.0
        assert a.get("length") == 0.0

    def test_out_of_range_read(self):
        assert JSArray([1.0]).get("99") is UNDEFINED


class TestObjectModel:
    def test_get_set_delete(self):
        o = JSObject()
        assert o.get("missing") is UNDEFINED
        o.set("k", 1.0)
        assert o.has("k")
        assert o.delete("k")
        assert not o.delete("k")

    def test_keys_ordered(self):
        o = JSObject()
        for k in ("z", "a", "m"):
            o.set(k, 1.0)
        assert o.keys() == ["z", "a", "m"]


# --- property tests -----------------------------------------------------------------


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_strict_equality_reflexive_for_numbers(x):
    assert js_equals_strict(x, x)


@given(st.floats(allow_nan=False, allow_infinity=False, min_value=-1e15, max_value=1e15))
def test_number_string_roundtrip(x):
    assert js_to_number(js_to_string(x)) == pytest.approx(x)


@given(st.one_of(st.booleans(), st.floats(allow_nan=False), st.text(max_size=20)))
def test_loose_equality_consistent_with_strict(value):
    if isinstance(value, float) and math.isnan(value):
        return
    assert js_equals_loose(value, value)


@given(st.text(max_size=10))
def test_truthiness_matches_emptiness_for_strings(s):
    assert js_truthy(s) == (len(s) > 0)


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=10))
def test_array_tostring_splits_back(values):
    a = JSArray(list(values))
    text = js_to_string(a)
    assert text.count(",") == max(0, len(values) - 1)
