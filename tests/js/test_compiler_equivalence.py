"""The compiled engine is *exactly* transparent.

Every test here runs the same program through both engines — the
tree-walking interpreter and the closure compiler of
:mod:`repro.js.compiler` — and asserts the observable outcomes are
identical: console output, return values, thrown error type / message /
line / column, executed step counts, canvas extractions, script
attribution, and (at the top of the stack) whole crawl datasets byte for
byte.

The snippet corpus deliberately aims at the places a compiler diverges
from an interpreter: scope-slot resolution vs dict lookups (hoisting,
shadowing, implicit globals, ``typeof`` of undeclared names), closure
capture (loop variables, ``for``-``of`` per-iteration bindings, arrow
``this``), evaluation-order quirks the interpreter has and the compiler
must reproduce (member compound assignment evaluating its object twice,
value-before-target errors), and the error paths (step budget, uncaught
throws, not-a-function) where line/column attribution is easy to get
wrong.
"""

import hashlib
import os

import pytest

from repro.browser.browser import Browser
from repro.crawler.crawl import CrawlTarget
from repro.crawler.shards import run_sharded_crawl
from repro.crawler.storage import save_dataset
from repro.js import compiler
from repro.js.errors import JSError
from repro.js.interpreter import Interpreter
from repro.js.values import JSObject, ROOT_SHAPE
from repro.net.faults import FaultConfig, FaultyNetwork
from repro.net.server import Network
from repro.webgen.vendors import VENDOR_SPECS, VENDORS_BY_NAME, prewarm_sources

# ---------------------------------------------------------------------------
# engine-level equivalence on adversarial snippets
# ---------------------------------------------------------------------------

SNIPPETS = {
    "closure-captures-loop-var": """
        var fns = [];
        for (var i = 0; i < 3; i++) { fns.push(function () { return i; }); }
        console.log(fns[0]() + ',' + fns[1]() + ',' + fns[2]());
    """,
    "for-of-per-iteration-capture": """
        var fns = [];
        for (var x of [10, 20, 30]) { fns.push(function () { return x; }); }
        console.log(fns[0]() + ',' + fns[1]() + ',' + fns[2]());
    """,
    "arrow-this-lexical": """
        var obj = { tag: 'outer', run: function () {
            var arrow = () => this.tag;
            return arrow();
        } };
        console.log(obj.run());
    """,
    "named-fn-expr-self-reference": """
        var f = function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); };
        console.log(f(5));
        console.log(typeof fact);
    """,
    "hoisting-var-and-function": """
        console.log(typeof later, a);
        var a = 1;
        function later() { return 'yes'; }
        console.log(later(), a);
    """,
    "let-shadow-mid-block": """
        var v = 'outer';
        { let v = 'inner'; console.log(v); }
        console.log(v);
    """,
    "implicit-global-from-function": """
        function leak() { leaked = 7; }
        leak();
        console.log(leaked);
    """,
    "shadowed-global-builtin": """
        var Math = { abs: function (x) { return 'shadowed:' + x; } };
        console.log(Math.abs(-3));
    """,
    "sparse-array-holes": """
        var a = [];
        a[5] = 'five';
        console.log(a.length, a[2], a.join('|'));
    """,
    "compound-operators": """
        var n = 7;
        n += 3; n -= 1; n *= 4; n /= 2; n %= 11;
        var b = 12;
        b &= 10; b |= 5; b ^= 3;
        console.log(n, b);
    """,
    "member-compound-evaluates-object-twice": """
        var calls = 0;
        function get() { calls++; return store; }
        var store = { n: 10 };
        get().n += 5;
        console.log(store.n, calls);
    """,
    "member-update-double-eval": """
        var hits = [];
        function pick() { hits.push('x'); return box; }
        var box = { v: 1 };
        pick().v++;
        console.log(box.v, hits.length);
    """,
    "delete-and-typeof-quirks": """
        var o = { k: 1 };
        console.log(delete o.k, delete o.missing, delete notDeclared);
        console.log(typeof neverDeclared, 'k' in o);
    """,
    "switch-fallthrough": """
        function route(x) {
            var path = [];
            switch (x) {
                case 1: path.push('one');
                case 2: path.push('two'); break;
                case 3: path.push('three'); break;
                default: path.push('other');
            }
            return path.join('>');
        }
        console.log(route(1), route(3), route(9));
    """,
    "switch-default-not-last": """
        function route(x) {
            switch (x) {
                default: return 'default';
                case 1: return 'one';
            }
        }
        console.log(route(1), route(2));
    """,
    "try-finally-ordering": """
        var log = [];
        function risky() {
            try { log.push('try'); throw { msg: 'boom' }; }
            catch (e) { log.push('catch:' + e.msg); return 'from-catch'; }
            finally { log.push('finally'); }
        }
        console.log(risky(), log.join(','));
    """,
    "exception-across-frames": """
        function inner() { throw 'deep'; }
        function outer() { inner(); }
        try { outer(); } catch (e) { console.log('caught ' + e); }
    """,
    "catch-param-shadowing": """
        var e = 'outer';
        try { throw 'thrown'; } catch (e) { console.log(e); }
        console.log(e);
    """,
    "string-methods": """
        var s = 'Canvas Fingerprint';
        console.log(s.length, s.toUpperCase(), s.slice(7), s.charCodeAt(0),
                    s.split(' ').length, s.indexOf('Finger'));
    """,
    "sequence-expression": """
        var x = (1, 2, 3);
        var y = 0;
        for (var i = 0, j = 10; i < 3; i++, j--) { y = i + j; }
        console.log(x, y);
    """,
    "do-while": """
        var n = 0;
        do { n++; } while (n < 4);
        console.log(n);
    """,
    "in-operator": """
        var o = { a: 1 };
        console.log('a' in o, 'b' in o, 0 in [9, 8]);
    """,
    "nested-blocks-and-scopes": """
        var trace = [];
        function f() {
            var x = 'fn';
            { let x = 'block1'; { let x = 'block2'; trace.push(x); } trace.push(x); }
            trace.push(x);
        }
        f();
        console.log(trace.join(','));
    """,
    "ternary-and-logical-short-circuit": """
        var calls = [];
        function t(v) { calls.push(v); return v; }
        var r = t(0) || t('') || t('win') || t('never');
        var s = t(1) && t(2) && 0 && t('skipped');
        console.log(r, s, calls.join(','));
    """,
    "template-literals": """
        var who = 'fingerprinter';
        console.log(`hello ${who}, ${1 + 2} times`);
    """,
    "object-shape-transitions": """
        var points = [];
        for (var i = 0; i < 4; i++) {
            var p = {};
            p.x = i; p.y = i * 2;
            points.push(p.x + p.y);
        }
        console.log(points.join(','));
    """,
}

#: Snippets that must *fail* identically: same error message, line, column.
FAILING_SNIPPETS = {
    "uncaught-throw": "var a = 1;\nthrow 'kaboom';\n",
    "read-of-undeclared": "var ok = 1;\nconsole.log(missingName);\n",
    "not-a-function": "var n = 42;\nn();\n",
    "member-of-undefined": "var u;\nu.prop;\n",
    "invalid-assignment-target": "var x = 1;\n5 = x;\n",
    "invalid-compound-target": "var x = 1;\n5 += x;\n",
    "uncaught-from-callee": "function boom() {\n  throw 'inner';\n}\nboom();\n",
}


def run_both(source, step_budget=Interpreter.DEFAULT_STEP_BUDGET):
    """Run ``source`` through both engines; return (console, error, steps) pairs."""
    results = []
    for js_compile in (False, True):
        interp = Interpreter(
            step_budget=step_budget, ast_cache={}, js_compile=js_compile
        )
        error = None
        try:
            interp.run(source, script_url="equiv.js", cache_key=("equiv", hash(source)))
        except JSError as exc:
            error = (type(exc).__name__, exc.message, exc.line, exc.col)
        results.append((list(interp.console_log), error, interp.steps_executed))
    return results


class TestSnippetEquivalence:
    @pytest.mark.parametrize("name", sorted(SNIPPETS))
    def test_snippet(self, name):
        interp, compiled = run_both(SNIPPETS[name])
        assert compiled == interp

    @pytest.mark.parametrize("name", sorted(FAILING_SNIPPETS))
    def test_failing_snippet(self, name):
        interp, compiled = run_both(FAILING_SNIPPETS[name])
        assert compiled == interp
        assert compiled[1] is not None, "snippet was expected to raise"

    def test_step_budget_exhaustion_identical(self):
        source = "var n = 0;\nwhile (true) { n++; }\n"
        interp, compiled = run_both(source, step_budget=500)
        assert compiled == interp
        assert "step budget exceeded" in compiled[1][1]

    def test_step_counts_match_on_every_snippet(self):
        # The tick parity claim, asserted in aggregate: identical budgets
        # charge identically in both engines.
        for name, source in SNIPPETS.items():
            interp, compiled = run_both(source)
            assert compiled[2] == interp[2], f"step counts diverge on {name}"


# ---------------------------------------------------------------------------
# vendor-script equivalence through full page loads
# ---------------------------------------------------------------------------


def vendor_corpus():
    """name -> source for every vendor in the catalog (both FPJS builds)."""
    corpus = {}
    for spec in VENDOR_SPECS:
        if spec.per_site:
            corpus[spec.name] = spec.source("equiv-site.example")
        else:
            corpus[spec.name] = spec.source()
    corpus["FingerprintJS-commercial"] = VENDORS_BY_NAME["FingerprintJS"].source(
        commercial=True
    )
    return corpus


def load_vendor_page(source, js_compile):
    network = Network()
    server = network.server_for("vendor-equiv.example")
    server.add_resource("/fp.js", source, content_type="application/javascript")
    server.add_resource(
        "/", "<html><title>equiv</title><script src='/fp.js'></script></html>"
    )
    browser = Browser(network, js_compile=js_compile)
    return browser.load("https://vendor-equiv.example/")


def page_fingerprint(page):
    return {
        "extractions": [
            (e.canvas_id, e.method, e.script_url, e.data_url, e.width, e.height)
            for e in page.instrument.extractions
        ],
        "calls": [
            (c.canvas_id, c.interface, c.method, c.args, c.retval, c.script_url)
            for c in page.instrument.calls
        ],
        "console": list(page.console),
        "script_errors": list(page.script_errors),
        "executed": list(page.executed_scripts),
    }


class TestVendorEquivalence:
    @pytest.mark.parametrize("vendor", sorted(vendor_corpus()))
    def test_vendor_page_identical(self, vendor):
        source = vendor_corpus()[vendor]
        interp = page_fingerprint(load_vendor_page(source, js_compile=False))
        compiled = page_fingerprint(load_vendor_page(source, js_compile=True))
        assert compiled == interp


# ---------------------------------------------------------------------------
# crawl-level equivalence: whole datasets byte for byte
# ---------------------------------------------------------------------------

FP_SCRIPT = """
var c = document.createElement('canvas');
c.width = 280; c.height = 60;
var g = c.getContext('2d');
g.textBaseline = 'alphabetic';
g.font = '14px Arial';
g.fillStyle = '#069';
g.fillText('equivalence probe', 4, 22);
window.__out = c.toDataURL();
"""


def make_network(n=8):
    network = Network()
    for i in range(n):
        server = network.server_for(f"site-{i}.example")
        server.add_resource(
            "/", f"<html><title>{i}</title><script>{FP_SCRIPT}</script></html>"
        )
    return network


def make_targets(n=8):
    return [
        CrawlTarget(f"site-{i}.example", i + 1, "top" if i % 2 == 0 else "tail")
        for i in range(n)
    ]


def crawl_bytes(tmp_path, name, js_compile, network=None, **kwargs):
    previous = os.environ.get("REPRO_JS_COMPILE")
    os.environ["REPRO_JS_COMPILE"] = "1" if js_compile else "0"
    try:
        dataset = run_sharded_crawl(
            network or make_network(), make_targets(), label="control", **kwargs
        )
    finally:
        if previous is None:
            del os.environ["REPRO_JS_COMPILE"]
        else:
            os.environ["REPRO_JS_COMPILE"] = previous
    path = tmp_path / f"{name}.jsonl"
    save_dataset(dataset, path)
    return path.read_bytes()


class TestCrawlEquivalence:
    def test_serial_crawl_datasets_identical(self, tmp_path):
        compiled = crawl_bytes(tmp_path, "compiled", js_compile=True)
        interp = crawl_bytes(tmp_path, "interp", js_compile=False)
        assert compiled == interp

    def test_parallel_prewarmed_crawl_datasets_identical(self, tmp_path):
        compiled = crawl_bytes(
            tmp_path, "compiled-par", js_compile=True,
            jobs=2, shards=3, js_prewarm=prewarm_sources(),
        )
        interp = crawl_bytes(
            tmp_path, "interp-par", js_compile=False, jobs=2, shards=3,
        )
        assert compiled == interp

    def test_fault_injected_supervised_crawl_identical(self, tmp_path):
        from repro.crawler.supervisor import SupervisorConfig

        def faulty():
            # Deterministic transient faults: same seed, same failures, so the
            # two engines see identical degraded networks.
            return FaultyNetwork(
                make_network(), FaultConfig(fault_rate=0.2), seed=11
            )

        config = SupervisorConfig(liveness_deadline_s=30.0, poll_interval_s=0.01)
        compiled = crawl_bytes(
            tmp_path, "compiled-faulty", js_compile=True, network=faulty(),
            jobs=2, shards=3, supervisor=config, js_prewarm=prewarm_sources(),
        )
        interp = crawl_bytes(
            tmp_path, "interp-faulty", js_compile=False, network=faulty(),
            jobs=2, shards=3, supervisor=config,
        )
        assert compiled == interp


# ---------------------------------------------------------------------------
# the machinery itself: knob, cache, prewarm, shapes
# ---------------------------------------------------------------------------


class TestCompileKnob:
    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_JS_COMPILE", raising=False)
        assert compiler.compile_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "off", "no"])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JS_COMPILE", value)
        assert compiler.compile_enabled() is False

    def test_interpreter_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JS_COMPILE", "0")
        assert Interpreter().compile_mode is False
        monkeypatch.setenv("REPRO_JS_COMPILE", "1")
        assert Interpreter().compile_mode is True

    def test_explicit_param_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JS_COMPILE", "0")
        assert Interpreter(js_compile=True).compile_mode is True


class TestScriptCache:
    def test_same_source_compiles_once(self):
        cache = compiler.script_cache()
        source = "var unique_cache_probe = 1 + 2;"
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        key = (digest, compiler.ENGINE_VERSION)
        cache.clear()
        first = compiler.get_or_compile(source, "a.js", {}, ("a", 1))
        second = compiler.get_or_compile(source, "b.js", {}, ("b", 1))
        assert first is second  # URL is not part of the key, the digest is
        assert cache.contains(key)

    def test_prewarm_compiles_vendor_corpus(self, monkeypatch):
        monkeypatch.setenv("REPRO_JS_COMPILE", "1")
        compiler.script_cache().clear()
        sources = prewarm_sources()
        assert compiler.prewarm(sources) == len(sources)
        cache = compiler.script_cache()
        for source in sources:
            digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
            assert cache.contains((digest, compiler.ENGINE_VERSION))

    def test_prewarm_disabled_by_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JS_COMPILE", "0")
        compiler.script_cache().clear()
        assert compiler.prewarm(prewarm_sources()) == 0

    def test_contains_records_no_counters(self):
        from repro import perf

        cache = compiler.script_cache()
        before = perf.PERF.snapshot().get("js.cache", {})
        cache.contains(("nonexistent-digest", compiler.ENGINE_VERSION))
        after = perf.PERF.snapshot().get("js.cache", {})
        assert after.get("hits", 0.0) == before.get("hits", 0.0)
        assert after.get("misses", 0.0) == before.get("misses", 0.0)


class TestShapes:
    def test_same_insertion_order_shares_shape(self):
        a, b = JSObject(), JSObject()
        for o in (a, b):
            o.set("x", 1)
            o.set("y", 2)
        assert a.shape is b.shape
        assert a.shape.keys == ("x", "y")

    def test_different_order_distinct_shapes(self):
        a, b = JSObject(), JSObject()
        a.set("x", 1); a.set("y", 2)
        b.set("y", 2); b.set("x", 1)
        assert a.shape is not b.shape

    def test_empty_objects_share_root(self):
        assert JSObject().shape is ROOT_SHAPE
        assert JSObject().shape is JSObject().shape
