"""Focused tests for JS built-in objects and primitive methods."""

import math

import pytest

from repro.js import Interpreter


@pytest.fixture
def interp():
    return Interpreter()


def run(interp, src):
    return interp.run(src)


class TestMath:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("Math.round(2.5);", 3.0),
            ("Math.round(-2.5);", -2.0),  # JS rounds half toward +inf
            ("Math.trunc(-2.7);", -2.0),
            ("Math.sign(-5);", -1.0),
            ("Math.sign(0);", 0.0),
            ("Math.min();", math.inf),
            ("Math.max();", -math.inf),
            ("Math.hypot(3, 4);", 5.0),
            ("Math.atan2(1, 1) * 4;", math.pi),
            ("Math.LN2;", math.log(2)),
        ],
    )
    def test_cases(self, interp, src, expected):
        assert run(interp, src) == pytest.approx(expected)

    def test_sqrt_negative_nan(self, interp):
        assert math.isnan(run(interp, "Math.sqrt(-1);"))

    def test_log_edge_cases(self, interp):
        assert run(interp, "Math.log(0);") == -math.inf
        assert math.isnan(run(interp, "Math.log(-1);"))


class TestJSON:
    def test_stringify_nested(self, interp):
        assert run(interp, "JSON.stringify([{a: 1}, [true, null]]);") == '[{"a":1},[true,null]]'

    def test_stringify_skips_functions(self, interp):
        assert run(interp, "JSON.stringify({f: function() {}, x: 1});") == '{"x":1}'

    def test_stringify_undefined_returns_undefined(self, interp):
        assert run(interp, "typeof JSON.stringify(undefined);") == "undefined"

    def test_parse_invalid_throws_catchable(self, interp):
        src = "var r = 'ok'; try { JSON.parse('{bad'); } catch (e) { r = 'caught'; } r;"
        assert run(interp, src) == "caught"

    def test_roundtrip(self, interp):
        assert run(interp, "JSON.parse(JSON.stringify({k: [1, 'two']})).k[1];") == "two"


class TestObjectNamespace:
    def test_values(self, interp):
        assert run(interp, "Object.values({a: 1, b: 2}).join('+');") == "1+2"

    def test_assign(self, interp):
        assert run(interp, "JSON.stringify(Object.assign({a: 1}, {b: 2}, {a: 3}));") == '{"a":3,"b":2}'

    def test_keys_of_array(self, interp):
        assert run(interp, "Object.keys(['x', 'y']).join(',');") == "0,1"


class TestArrayNamespace:
    def test_is_array(self, interp):
        assert run(interp, "Array.isArray([]);") is True
        assert run(interp, "Array.isArray('nope');") is False

    def test_from_string(self, interp):
        assert run(interp, "Array.from('abc').join('-');") == "a-b-c"

    def test_from_with_mapper(self, interp):
        assert run(interp, "Array.from([1, 2, 3], x => x * 10).join(',');") == "10,20,30"

    def test_array_constructor_with_length(self, interp):
        assert run(interp, "Array(3).length;") == 3.0


class TestStringMethods:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("'abc'.padStart(5, '0');", "00abc"),
            ("'abc'.padEnd(5, '.');", "abc.."),
            ("'hello'.substr(1, 3);", "ell"),
            ("'hello'.substring(3, 1);", "el"),  # swapped args
            ("'abc'.at ? 'modern' : 'subset';", "subset"),
            ("'a-b-c'.replace('-', '+');", "a+b-c"),
            ("'a-b-c'.replaceAll('-', '+');", "a+b+c"),
            ("'xyz'.concat('1', 2);", "xyz12"),
            ("'AbC'.toUpperCase();", "ABC"),
            ("'hello'.lastIndexOf('l');", 3.0),
            ("'hello'.codePointAt(1);", 101.0),
            ("''.split(',').length;", 1.0),
            ("'abc'.split('').join('|');", "a|b|c"),
        ],
    )
    def test_cases(self, interp, src, expected):
        assert run(interp, src) == expected

    def test_char_code_out_of_range(self, interp):
        assert math.isnan(run(interp, "'ab'.charCodeAt(9);"))
        assert run(interp, "'ab'.charAt(9);") == ""


class TestNumberMethods:
    def test_to_precision(self, interp):
        assert run(interp, "(3.14159).toPrecision(3);") == "3.14"

    def test_to_string_radix_2(self, interp):
        assert run(interp, "(10).toString(2);") == "1010"

    def test_to_string_radix_36(self, interp):
        assert run(interp, "(35).toString(36);") == "z"

    def test_number_namespace(self, interp):
        assert run(interp, "Number('42');") == 42.0
        assert run(interp, "Number.isInteger(4);") is True
        assert run(interp, "Number.isInteger(4.5);") is False
        assert run(interp, "Number.isNaN(NaN);") is True
        assert run(interp, "Number.isNaN('NaN');") is False


class TestEncoding:
    def test_encode_uri_component(self, interp):
        assert run(interp, "encodeURIComponent('a b&c');") == "a%20b%26c"

    def test_btoa_non_latin1_throws(self, interp):
        src = "var r = 'ok'; try { btoa('\\u2603'); } catch (e) { r = 'threw'; } r;"
        assert run(interp, src) == "threw"

    def test_atob_invalid_throws(self, interp):
        src = "var r = 'ok'; try { atob('!not base64!'); } catch (e) { r = 'threw'; } r;"
        assert run(interp, src) == "threw"


class TestErrorConstructor:
    def test_error_message(self, interp):
        assert run(interp, "new Error('boom').message;") == "boom"

    def test_typeerror_alias(self, interp):
        assert run(interp, "new TypeError('t').message;") == "t"

    def test_thrown_error_caught_with_message(self, interp):
        src = """
        function fail() { throw new Error('expected ' + (1 + 1)); }
        var msg; try { fail(); } catch (e) { msg = e.message; }
        msg;
        """
        assert run(interp, src) == "expected 2"
