"""Tests for the DOM substrate: HTML scanning, elements, document, window."""

import pytest

from repro.dom.document import Document
from repro.dom.elements import DOMElement
from repro.dom.html import parse_html
from repro.dom.window import make_navigator, make_screen
from repro.js import Interpreter


class TestHTMLScanner:
    def test_external_and_inline_in_order(self):
        page = parse_html(
            '<html><script src="/a.js"></script><script>var x = 1;</script>'
            '<script src="https://cdn.example/b.js"></script></html>'
        )
        assert [s.src for s in page.scripts] == ["/a.js", None, "https://cdn.example/b.js"]
        assert page.scripts[1].source == "var x = 1;"

    def test_title(self):
        assert parse_html("<title> My Site </title>").title == "My Site"
        assert parse_html("<html></html>").title == ""

    def test_attrs_extracted(self):
        page = parse_html('<script src="/x.js" data-consent="required" async="1"></script>')
        assert page.scripts[0].attr("data-consent") == "required"
        assert page.scripts[0].attr("missing") is None

    def test_single_quotes(self):
        page = parse_html("<script src='/q.js'></script>")
        assert page.scripts[0].src == "/q.js"

    def test_consent_banner_markers(self):
        assert parse_html('<div class="consent-banner">x</div>').has_consent_banner
        assert parse_html("<div data-consent-banner='1'>x</div>").has_consent_banner
        assert not parse_html("<div>no banner</div>").has_consent_banner

    def test_multiline_inline_script(self):
        page = parse_html("<script>\nvar a = 1;\nvar b = 2;\n</script>")
        assert "var b = 2;" in page.scripts[0].source

    def test_case_insensitive_tags(self):
        page = parse_html('<SCRIPT SRC="/up.js"></SCRIPT>')
        assert page.scripts[0].src == "/up.js"


class TestDOMElement:
    def test_tree_operations(self):
        parent = DOMElement("div")
        child = DOMElement("span")
        parent.append_child(child)
        assert child.parent is parent
        assert child in parent.children
        parent.remove_child(child)
        assert child.parent is None

    def test_reparenting(self):
        a, b, c = DOMElement("div"), DOMElement("div"), DOMElement("p")
        a.append_child(c)
        b.append_child(c)
        assert c not in a.children and c in b.children

    def test_iter_tree(self):
        root = DOMElement("html")
        body = DOMElement("body")
        div = DOMElement("div")
        root.append_child(body)
        body.append_child(div)
        assert [e.tag_name for e in root.iter_tree()] == ["html", "body", "div"]


class TestDocument:
    def test_create_element(self):
        doc = Document()
        el = doc.create_element("DIV")
        assert isinstance(el, DOMElement)
        assert el.tag_name == "div"

    def test_canvas_factory_injected(self):
        sentinel = object()
        doc = Document(canvas_factory=lambda: sentinel)
        assert doc.create_element("canvas") is sentinel

    def test_get_element_by_id(self):
        doc = Document()
        div = doc.create_element("div")
        div.attributes["id"] = "target"
        doc.body.append_child(div)
        assert doc.get_element_by_id("target") is div
        assert doc.get_element_by_id("missing") is None

    def test_query_selector_all(self):
        doc = Document()
        for cls in ("consent-accept", "consent-accept", "other"):
            el = doc.create_element("button")
            el.attributes["class"] = cls
            doc.body.append_child(el)
        assert len(doc.query_selector_all(".consent-accept")) == 2
        assert len(doc.query_selector_all("button")) == 3


class TestJSIntegration:
    @pytest.fixture
    def interp(self):
        interp = Interpreter()
        doc = Document(url="https://page.example/")
        interp.define_global("document", doc)
        interp.define_global("navigator", make_navigator("intel-ubuntu-22.04"))
        interp.define_global("screen", make_screen())
        return interp

    def test_create_and_append(self, interp):
        result = interp.run(
            """
            var div = document.createElement('div');
            div.id = 'made-by-js';
            document.body.appendChild(div);
            document.getElementById('made-by-js').tagName;
            """
        )
        assert result == "DIV"

    def test_set_attribute_roundtrip(self, interp):
        result = interp.run(
            """
            var el = document.createElement('span');
            el.setAttribute('data-k', 'v1');
            el.getAttribute('data-k');
            """
        )
        assert result == "v1"

    def test_navigator_properties(self, interp):
        assert interp.run("navigator.platform;") == "Linux x86_64"
        assert interp.run("navigator.webdriver;") is False
        assert "Chrome" in interp.run("navigator.userAgent;")

    def test_m1_navigator_differs(self):
        intel = make_navigator("intel-ubuntu-22.04")
        m1 = make_navigator("apple-m1")
        assert intel.get("platform") != m1.get("platform")

    def test_screen_properties(self, interp):
        assert interp.run("screen.width + 'x' + screen.height;") == "1920x1080"

    def test_text_content(self, interp):
        assert interp.run(
            "var p = document.createElement('p'); p.textContent = 'hi'; p.textContent;"
        ) == "hi"
