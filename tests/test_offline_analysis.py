"""The crawl/analyze decoupling: analyses over a persisted dataset must be
identical to analyses over the in-memory crawl — proof the pipeline would
run unchanged on real crawl data shipped as JSONL."""

import pytest

from repro.config import StudyScale
from repro.core.clustering import cluster_canvases
from repro.core.detection import FingerprintDetector
from repro.core.evasion import analyze_serving_context, render_twice_fraction
from repro.core.prevalence import compute_prevalence
from repro.core.records import CanvasExtraction, SiteObservation
from repro.crawler import load_dataset, run_crawl, save_dataset
from repro.webgen import build_world

from pathlib import Path


@pytest.fixture(scope="module")
def datasets(tmp_path_factory):
    world = build_world(StudyScale(fraction=0.02, seed=1234))
    live = run_crawl(world.network, world.all_targets, label="offline-test")
    path = tmp_path_factory.mktemp("crawl") / "crawl.jsonl.gz"
    save_dataset(live, path)
    return live, load_dataset(path)


class TestOfflineEqualsLive:
    def test_prevalence_identical(self, datasets):
        live, restored = datasets
        detector = FingerprintDetector()
        live_prev = compute_prevalence(live, detector.detect_all(live.successful()))
        rest_prev = compute_prevalence(restored, detector.detect_all(restored.successful()))
        for pop in ("top", "tail"):
            a, b = live_prev.population(pop), rest_prev.population(pop)
            assert (a.fp_sites, a.sites_successful, a.canvases_per_fp_site) == (
                b.fp_sites,
                b.sites_successful,
                b.canvases_per_fp_site,
            )

    def test_clusters_identical(self, datasets):
        live, restored = datasets
        detector = FingerprintDetector()

        def cluster_map(ds):
            clusters = cluster_canvases(detector.detect_all(ds.successful()), ds.populations())
            return {h: sorted(c.all_sites()) for h, c in clusters.items()}

        assert cluster_map(live) == cluster_map(restored)

    def test_render_twice_identical(self, datasets):
        live, restored = datasets
        detector = FingerprintDetector()
        assert render_twice_fraction(detector.detect_all(live.successful())) == render_twice_fraction(
            detector.detect_all(restored.successful())
        )

    def test_serving_context_identical(self, datasets):
        live, restored = datasets
        detector = FingerprintDetector()

        def fractions(ds):
            ctx = analyze_serving_context(detector.detect_all(ds.successful()), ds.populations())
            return (
                ctx.first_party_fraction("top"),
                ctx.subdomain_fraction("top"),
                ctx.cdn_fraction("top"),
            )

        assert fractions(live) == fractions(restored)

    def test_script_sources_survive(self, datasets):
        live, restored = datasets
        live_sources = {d: o.script_sources for d, o in live.by_domain().items() if o.success}
        rest_sources = {d: o.script_sources for d, o in restored.by_domain().items() if o.success}
        assert live_sources == rest_sources


# -- streaming CLI ------------------------------------------------------------------


def _write_synthetic_dataset(path, sites, blob_bytes):
    """Stream a large dataset to disk without ever holding it in memory.

    Each site carries one fingerprintable canvas plus a large recorded
    script source, so total file size scales with ``sites * blob_bytes``
    while the *aggregated* analysis state stays tiny.
    """
    import json

    from repro.crawler.storage import FORMAT

    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"label": "synthetic", "format": FORMAT}) + "\n")
        for index in range(sites):
            observation = SiteObservation(
                domain=f"site-{index}.example",
                rank=index + 1,
                population="top" if index % 2 == 0 else "tail",
                success=True,
                extractions=[
                    CanvasExtraction(
                        data_url=f"data:image/png;base64,CANVAS{index % 5}",
                        mime="image/png",
                        width=64,
                        height=64,
                        script_url=f"https://fp.example/fp-{index % 5}.js",
                        canvas_id=0,
                        t_ms=1.0,
                    )
                ],
                script_sources={
                    f"https://fp.example/fp-{index % 5}.js": f"site{index};" * (blob_bytes // 10)
                },
            )
            fh.write(json.dumps(observation.to_json(), separators=(",", ":")) + "\n")


_RSS_PROBE = """
import contextlib, io, resource, sys
from repro.analysis.__main__ import main
with contextlib.redirect_stdout(io.StringIO()):
    assert main([sys.argv[1]]) == 0
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def _peak_rss_kb(dataset_path):
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, str(dataset_path)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return int(proc.stdout.strip().splitlines()[-1])


class TestStreamingCLIBoundedMemory:
    def test_peak_rss_does_not_scale_with_dataset_size(self, tmp_path):
        """The CLI folds via iter_observations: analyzing a dataset ~50x
        larger must not cost proportionally more memory.  A slurping
        implementation (the old ``load_dataset`` path) holds every
        observation's script sources at once and fails this by design."""
        small = tmp_path / "small.jsonl"
        large = tmp_path / "large.jsonl"
        _write_synthetic_dataset(small, sites=3, blob_bytes=500_000)
        _write_synthetic_dataset(large, sites=150, blob_bytes=500_000)
        large_mb = large.stat().st_size / 1e6
        assert large_mb > 50, f"synthetic dataset too small to prove anything ({large_mb:.0f}MB)"

        rss_small = _peak_rss_kb(small)
        rss_large = _peak_rss_kb(large)
        # ru_maxrss is KB on Linux.  Allow generous interpreter noise, but
        # stay far below the ~60MB the dataset's observations occupy.
        assert rss_large - rss_small < 25_000, (
            f"streaming CLI peak RSS grew {rss_large - rss_small}KB on a "
            f"{large_mb:.0f}MB dataset — it is not streaming"
        )

    def test_cli_output_matches_batch_analysis(self, datasets, tmp_path, capsys):
        """Same dataset through the streaming CLI and the batch analyses."""
        from repro.analysis.__main__ import main

        live, _restored = datasets
        path = tmp_path / "crawl.jsonl.gz"
        save_dataset(live, path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out

        detector = FingerprintDetector()
        outcomes = detector.detect_all(live.successful())
        prevalence = compute_prevalence(live, outcomes)
        clusters = cluster_canvases(outcomes, live.populations())
        assert f"dataset: {live.label} ({len(live.observations)} sites)" in out
        assert f"{prevalence.top.fp_sites} fingerprinting" in out
        assert f"distinct test canvases: {len(clusters)}" in out
        fraction = FingerprintDetector.fingerprintable_fraction(outcomes.values())
        assert f"fingerprintable fraction of extractions: {fraction:.1%}" in out
