"""The crawl/analyze decoupling: analyses over a persisted dataset must be
identical to analyses over the in-memory crawl — proof the pipeline would
run unchanged on real crawl data shipped as JSONL."""

import pytest

from repro.config import StudyScale
from repro.core.clustering import cluster_canvases
from repro.core.detection import FingerprintDetector
from repro.core.evasion import analyze_serving_context, render_twice_fraction
from repro.core.prevalence import compute_prevalence
from repro.crawler import load_dataset, run_crawl, save_dataset
from repro.webgen import build_world


@pytest.fixture(scope="module")
def datasets(tmp_path_factory):
    world = build_world(StudyScale(fraction=0.02, seed=1234))
    live = run_crawl(world.network, world.all_targets, label="offline-test")
    path = tmp_path_factory.mktemp("crawl") / "crawl.jsonl.gz"
    save_dataset(live, path)
    return live, load_dataset(path)


class TestOfflineEqualsLive:
    def test_prevalence_identical(self, datasets):
        live, restored = datasets
        detector = FingerprintDetector()
        live_prev = compute_prevalence(live, detector.detect_all(live.successful()))
        rest_prev = compute_prevalence(restored, detector.detect_all(restored.successful()))
        for pop in ("top", "tail"):
            a, b = live_prev.population(pop), rest_prev.population(pop)
            assert (a.fp_sites, a.sites_successful, a.canvases_per_fp_site) == (
                b.fp_sites,
                b.sites_successful,
                b.canvases_per_fp_site,
            )

    def test_clusters_identical(self, datasets):
        live, restored = datasets
        detector = FingerprintDetector()

        def cluster_map(ds):
            clusters = cluster_canvases(detector.detect_all(ds.successful()), ds.populations())
            return {h: sorted(c.all_sites()) for h, c in clusters.items()}

        assert cluster_map(live) == cluster_map(restored)

    def test_render_twice_identical(self, datasets):
        live, restored = datasets
        detector = FingerprintDetector()
        assert render_twice_fraction(detector.detect_all(live.successful())) == render_twice_fraction(
            detector.detect_all(restored.successful())
        )

    def test_serving_context_identical(self, datasets):
        live, restored = datasets
        detector = FingerprintDetector()

        def fractions(ds):
            ctx = analyze_serving_context(detector.detect_all(ds.successful()), ds.populations())
            return (
                ctx.first_party_fraction("top"),
                ctx.subdomain_fraction("top"),
                ctx.cdn_fraction("top"),
            )

        assert fractions(live) == fractions(restored)

    def test_script_sources_survive(self, datasets):
        live, restored = datasets
        live_sources = {d: o.script_sources for d, o in live.by_domain().items() if o.success}
        rest_sources = {d: o.script_sources for d, o in restored.by_domain().items() if o.success}
        assert live_sources == rest_sources
