"""Tests for tables, figures, stats helpers and the experiment registry."""

import pytest

from repro.analysis.stats import binomial_ci, mean, median, percentile, zipf_fit
from repro.config import StudyScale
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.webgen import build_world


@pytest.fixture(scope="module")
def result():
    world = build_world(StudyScale(fraction=0.02, seed=99))
    return world.run_full_study(include_adblock_crawls=True, include_cross_machine=True)


class TestTables:
    def test_table1_structure(self, result):
        from repro.analysis.tables import table1

        rows, text = table1(result)
        assert len(rows) == 13
        assert rows[0]["vendor"] == "Akamai"
        assert rows[-1]["vendor"] == "GeeTest"
        assert "Total Sites" in text
        assert all(r["top"] >= 0 and r["tail"] >= 0 for r in rows)

    def test_table2_structure(self, result):
        from repro.analysis.tables import table2

        rows, text = table2(result.adblock_rows)
        assert [r["config"] for r in rows] == ["Control", "Adblock Plus", "UBlock Origin"]
        control = rows[0]
        for blocked in rows[1:]:
            assert blocked["canvases_top"] <= control["canvases_top"]
            assert blocked["sites_top"] <= control["sites_top"]
        assert "Control" in text

    def test_table3_structure(self, result):
        from repro.analysis.tables import table3

        rows, text = table3(result.signatures)
        by_vendor = {r["vendor"]: r for r in rows}
        assert by_vendor["FingerprintJS"]["demo"]
        assert by_vendor["Akamai"]["customer"] and not by_vendor["Akamai"]["demo"]
        assert by_vendor["Imperva"]["pattern"] == "<URL regex>"
        assert by_vendor["Imperva"]["canvases_harvested"] == 0
        assert "fpnpmcdn.net" in text

    def test_table4_structure(self, result):
        from repro.analysis.tables import table4

        rows, text = table4(result.blocklist_context)
        names = [r["blocklist"] for r in rows]
        assert names == ["EasyList", "EasyPrivacy", "Disconnect", "Any", "All"]
        any_row = rows[3]
        all_row = rows[4]
        assert all_row["top"] <= any_row["top"]
        assert 0 <= any_row["top_frac"] <= 1
        assert "Total" in text


class TestFigures:
    def test_figure1_data_sorted(self, result):
        from repro.analysis.figures import figure1_data

        data = figure1_data(result)
        tops = [d["top_sites"] for d in data]
        assert tops == sorted(tops, reverse=True)

    def test_figure1_render(self, result):
        from repro.analysis.figures import render_figure1

        text = render_figure1(result, n=10)
        assert "Figure 1" in text
        assert "#" in text

    def test_figure2_render(self, result):
        from repro.analysis.figures import render_figure2

        text = render_figure2(result)
        assert "Figure 2" in text

    def test_figure1_png_dogfooded(self, result, tmp_path):
        """Figure 1 rendered as a PNG by our own canvas substrate."""
        from repro.analysis.figures import figure1_png
        from repro.canvas.encode import png_decode

        path = tmp_path / "fig1.png"
        payload = figure1_png(result, path=str(path))
        assert path.read_bytes() == payload
        pixels = png_decode(payload)
        assert pixels.shape == (360, 640, 4)
        # Both series are drawn (blue top bars, orange tail bars).
        blue = ((pixels[..., 2] > 150) & (pixels[..., 0] < 100)).sum()
        orange = ((pixels[..., 0] > 200) & (pixels[..., 2] < 100)).sum()
        assert blue > 100 and orange > 20

    def test_report_renders(self, result):
        from repro.analysis.report import study_report

        text = study_report(result)
        assert "Table 1" in text
        assert "Paper vs measured" in text
        assert "prevalence (top)" in text

    def test_report_render_cache_section(self, result):
        """The timing section surfaces per-layer cache counters."""
        from repro.analysis.report import render_cache_table, study_report

        text = study_report(result)
        assert "Render-cache acceleration" in text
        table = render_cache_table(result)
        assert "hit rate" in table and "saved" in table
        assert "render_cache" in table
        assert result.perf_counters["render_cache"]["hits"] > 0

    def test_stage_timings_carry_perf_details(self, result):
        crawl_stages = [t for t in result.stage_timings if t.name.startswith("crawl.")]
        assert crawl_stages
        assert any("perf" in t.details for t in crawl_stages)


class TestExperiments:
    def test_all_experiments_render(self, result):
        for key in EXPERIMENTS:
            text = run_experiment(key, result)
            assert text.startswith("===")
            assert len(text) > 40, key

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            get_experiment("nope")

    def test_cross_machine_reported(self, result):
        text = run_experiment("cross_machine", result)
        assert "IDENTICAL" in text


class TestStats:
    def test_mean_median(self):
        assert mean([1, 2, 3]) == 2
        assert median([5, 1, 3]) == 3
        assert median([1, 2, 3, 4]) == 2.5
        assert mean([]) == 0.0

    def test_percentile(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 50) == 50
        assert percentile(values, 100) == 100
        with pytest.raises(ValueError):
            percentile(values, 101)

    def test_binomial_ci_contains_p(self):
        lo, hi = binomial_ci(127, 1000)
        assert lo < 0.127 < hi
        assert binomial_ci(0, 0) == (0.0, 0.0)

    def test_zipf_fit_positive_for_power_law(self):
        counts = [int(1000 / (r ** 1.2)) for r in range(1, 50)]
        alpha = zipf_fit(counts)
        assert 1.0 < alpha < 1.4


class TestComparisons:
    def test_every_comparison_has_sane_values(self, result):
        from repro.analysis.report import study_comparisons

        comparisons = study_comparisons(result)
        assert len(comparisons) > 30
        for c in comparisons:
            assert 0 <= c.paper_value <= 10, c.key
            assert 0 <= c.measured <= 70, c.key
            assert "paper" in c.line and "measured" in c.line

    def test_fraction_formatting(self):
        from repro.analysis.report import Comparison

        c = Comparison("x", 0.127, 0.125)
        assert c.fmt(0.127) == "12.7%"
        count = Comparison("y", 2067, 2027, kind="count")
        assert count.fmt(2067) == "2,067"
