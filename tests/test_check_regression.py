"""The CI regression gate (benchmarks/check_regression.py).

The script is deliberately standalone (CI invokes it before installing the
package), so the tests load it by path and drive ``main`` directly.

Exit-code contract: 0 ok, 1 regression, 2 missing baseline/current file —
a missing baseline is a setup problem with its own distinct code so a CI
job can tell "commit a baseline" apart from "performance regressed".
"""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"


@pytest.fixture(scope="module")
def check_regression():
    spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def payload(**results):
    return {"suite": "t", "results": results}


def write(path, data):
    path.write_text(json.dumps(data))
    return path


class TestExitCodes:
    def test_ok(self, check_regression, tmp_path, capsys):
        current = write(tmp_path / "cur.json", payload(b={"speedup": 2.0}))
        baseline = write(tmp_path / "base.json", payload(b={"speedup": 2.0}))
        assert check_regression.main([str(current), str(baseline)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_1(self, check_regression, tmp_path, capsys):
        current = write(tmp_path / "cur.json", payload(b={"speedup": 1.0}))
        baseline = write(tmp_path / "base.json", payload(b={"speedup": 2.0}))
        assert check_regression.main([str(current), str(baseline)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_baseline_exits_2_with_instructions(
        self, check_regression, tmp_path, capsys
    ):
        current = write(tmp_path / "cur.json", payload(b={"speedup": 2.0}))
        missing = tmp_path / "baselines" / "BENCH_t.json"
        assert check_regression.main([str(current), str(missing)]) == 2
        out = capsys.readouterr().out
        assert "baseline not found" in out
        assert "commit it" in out
        assert str(missing) in out  # the copy-paste command names the real path

    def test_missing_current_exits_2(self, check_regression, tmp_path, capsys):
        baseline = write(tmp_path / "base.json", payload(b={"speedup": 2.0}))
        assert check_regression.main([str(tmp_path / "cur.json"), str(baseline)]) == 2
        assert "not found" in capsys.readouterr().out


class TestComparisons:
    def test_improvement_and_new_benchmarks_pass(self, check_regression, tmp_path):
        current = write(
            tmp_path / "cur.json",
            payload(b={"speedup": 9.0}, brand_new={"speedup": 1.0}),
        )
        baseline = write(tmp_path / "base.json", payload(b={"speedup": 2.0}))
        assert check_regression.main([str(current), str(baseline)]) == 0

    def test_metric_missing_from_current_fails(self, check_regression, tmp_path, capsys):
        current = write(tmp_path / "cur.json", payload())
        baseline = write(tmp_path / "base.json", payload(b={"speedup": 2.0}))
        assert check_regression.main([str(current), str(baseline)]) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_drop_within_tolerance_passes(self, check_regression, tmp_path):
        current = write(tmp_path / "cur.json", payload(b={"speedup": 1.6}))
        baseline = write(tmp_path / "base.json", payload(b={"speedup": 2.0}))
        assert check_regression.main([str(current), str(baseline)]) == 0

    def test_hit_rates_are_gated(self, check_regression, tmp_path):
        current = write(
            tmp_path / "cur.json",
            payload(b={"hit_rates": {"js.cache": {"hit_rate": 0.2}}}),
        )
        baseline = write(
            tmp_path / "base.json",
            payload(b={"hit_rates": {"js.cache": {"hit_rate": 0.9}}}),
        )
        assert check_regression.main([str(current), str(baseline)]) == 1
