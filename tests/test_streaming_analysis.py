"""Streaming analysis through the full study pipeline.

Pins the engine's three execution modes against each other:

* **live partials** — no cache: crawl workers fold observations as pages
  land and ship bundle partials home with their records;
* **block-cached fold** — with a stage cache: the reduce stage folds the
  dataset through content-addressed block partials, so appending sites to
  a study re-ingests only the new blocks;
* **batch** — the monolithic entry points, which are thin drivers over the
  same reducers.

All three must produce identical reports; the cached mode must also prove
it only did delta work (``analysis.*`` counters).
"""

import math

import pytest

from repro import obs
from repro.config import StudyScale
from repro.core.pipeline import run_study
from repro.core.stages.study import ReduceStage
from repro.crawler.supervisor import SupervisorConfig
from repro.webgen import build_world

SCALE = StudyScale(fraction=0.01, seed=606)


@pytest.fixture(scope="module")
def world():
    return build_world(SCALE)


def counter_delta(before, after):
    b = before["counters"]
    return {
        name: value - b.get(name, 0)
        for name, value in after["counters"].items()
        if value != b.get(name, 0)
    }


def run_with_counters(world, **kwargs):
    before = obs.METRICS.snapshot()
    result = run_study(
        world.network,
        world.all_targets if "targets" not in kwargs else kwargs.pop("targets"),
        world.vendor_knowledge(),
        easylist_text=world.easylist_text,
        easyprivacy_text=world.easyprivacy_text,
        disconnect=world.disconnect,
        ubo_extra_text=world.ubo_extra_text,
        dns=world.network.dns,
        **kwargs,
    )
    return result, counter_delta(before, obs.METRICS.snapshot())


class TestStreamingEqualsBatch:
    def test_live_fold_and_block_fold_agree_and_report_their_mode(self, tmp_path):
        live_world, cached_world = build_world(SCALE), build_world(SCALE)
        live, live_counters = run_with_counters(
            live_world, include_adblock_crawls=False, jobs=2
        )
        cached, cached_counters = run_with_counters(
            cached_world,
            include_adblock_crawls=False,
            jobs=2,
            cache_dir=tmp_path / "cache",
        )
        assert live == cached
        # No cache -> crawl workers folded partials, reduce popped the live
        # bundle; with a cache -> block-partial fold, no live bundle.
        assert live_counters.get("analysis.fold.live", 0) >= 1
        assert live_counters.get("analysis.merge.partials", 0) >= 1
        assert "analysis.block.misses" not in live_counters
        assert cached_counters.get("analysis.block.misses", 0) >= 1
        assert "analysis.fold.live" not in cached_counters

    def test_supervised_streaming_study_equals_unsupervised(self, world):
        unsupervised = build_world(SCALE).run_full_study(include_adblock_crawls=False)
        before = obs.METRICS.snapshot()
        supervised = build_world(SCALE).run_full_study(
            include_adblock_crawls=False,
            jobs=2,
            supervisor=SupervisorConfig(liveness_deadline_s=30.0),
        )
        counters = counter_delta(before, obs.METRICS.snapshot())
        assert supervised == unsupervised
        # Supervised workers shipped analysis partials with their results.
        assert counters.get("analysis.merge.partials", 0) >= 1
        assert counters.get("analysis.fold.live", 0) >= 1


class TestIncrementalAppend:
    def test_appending_sites_reingests_only_the_new_blocks(
        self, world, tmp_path, monkeypatch
    ):
        block = 8
        monkeypatch.setattr(ReduceStage, "DEFAULT_BLOCK_SIZE", block)
        cache_dir = tmp_path / "cache"
        base, appended = 8 * block, 10 * block
        assert len(world.all_targets) >= appended

        _, cold = run_with_counters(
            world,
            targets=world.all_targets[:base],
            stages=["prevalence"],
            cache_dir=cache_dir,
        )
        assert cold.get("analysis.block.misses", 0) == base // block
        assert cold.get("analysis.block.hits", 0) == 0
        assert cold.get("analysis.ingest.sites", 0) == base

        grown, warm = run_with_counters(
            world,
            targets=world.all_targets[:appended],
            stages=["prevalence"],
            cache_dir=cache_dir,
        )
        # Every pre-existing block is a cache hit; only the appended sites
        # were re-ingested.  This is the streaming engine's delta property.
        assert warm.get("analysis.block.hits", 0) == base // block
        assert warm.get("analysis.block.misses", 0) == math.ceil(
            (appended - base) / block
        )
        assert warm.get("analysis.ingest.sites", 0) == appended - base

        # Delta work, same answer: an uncached run over the same prefix
        # (fresh world, same seed) must produce the identical report.
        fresh_world = build_world(SCALE)
        fresh, _ = run_with_counters(
            fresh_world,
            targets=fresh_world.all_targets[:appended],
            stages=["prevalence"],
        )
        assert grown.prevalence == fresh.prevalence
