"""Tests for ABP rule parsing and matching semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.blocklists.rules import ParseError, parse_list, parse_rule


def rule(text):
    r = parse_rule(text)
    assert r is not None
    return r


class TestParsing:
    def test_comment_lines_skipped(self):
        assert parse_rule("! comment") is None
        assert parse_rule("[Adblock Plus 2.0]") is None
        assert parse_rule("   ") is None

    def test_exception_flag(self):
        assert rule("@@||example.com^").is_exception
        assert not rule("||example.com^").is_exception

    def test_element_hiding_never_matches_urls(self):
        r = rule("example.com##.ad-banner")
        assert r.is_element_hiding
        assert not r.matches("https://example.com/ad-banner.js")

    def test_unknown_option_raises(self):
        with pytest.raises(ParseError):
            parse_rule("||example.com^$bogusoption")

    def test_parse_list_skips_bad_rules(self):
        rules = parse_list("! header\n||good.com^\n||bad.com^$nosuchopt\n")
        assert len(rules) == 1


class TestHostAnchor:
    def test_matches_domain_and_subdomains(self):
        r = rule("||tracker.com^")
        assert r.matches("https://tracker.com/fp.js")
        assert r.matches("https://cdn.tracker.com/fp.js")
        assert r.matches("http://tracker.com/")

    def test_does_not_match_suffix_domains(self):
        r = rule("||tracker.com^")
        assert not r.matches("https://nottracker.com/fp.js")
        assert not r.matches("https://tracker.com.evil.net/fp.js")

    def test_separator_requires_boundary(self):
        r = rule("||ads.example^")
        assert r.matches("https://ads.example/x")
        assert not r.matches("https://ads.example-not.com/")


class TestPatterns:
    def test_plain_substring(self):
        r = rule("/fingerprint.js")
        assert r.matches("https://any.com/static/fingerprint.js")
        assert not r.matches("https://any.com/static/other.js")

    def test_wildcard(self):
        r = rule("/fp-*.min.js")
        assert r.matches("https://x.com/fp-v2.min.js")
        assert not r.matches("https://x.com/fp.min.js")

    def test_start_anchor(self):
        r = rule("|https://exact.com/")
        assert r.matches("https://exact.com/path")
        assert not r.matches("https://other.com/?u=https://exact.com/")

    def test_end_anchor(self):
        r = rule("/collector.js|")
        assert r.matches("https://x.com/collector.js")
        assert not r.matches("https://x.com/collector.js?v=1")

    def test_regex_literal_rule(self):
        r = rule(r"/fp-[0-9]+\.js/")
        assert r.matches("https://x.com/fp-123.js")
        assert not r.matches("https://x.com/fp-abc.js")


class TestOptions:
    def test_script_type_restriction(self):
        r = rule("||ads.net^$script")
        assert r.matches("https://ads.net/a.js", resource_type="script")
        assert not r.matches("https://ads.net/a.gif", resource_type="image")

    def test_inverse_type(self):
        r = rule("||ads.net^$~script")
        assert not r.matches("https://ads.net/a.js", resource_type="script")
        assert r.matches("https://ads.net/a.gif", resource_type="image")

    def test_document_modifier_misses_scripts(self):
        """Appendix A.6: ||mgid.com^$document does not block script loads."""
        r = rule("||mgid.com^$document")
        assert not r.matches("https://mgid.com/fp.js", resource_type="script")
        assert r.matches("https://mgid.com/", resource_type="document")

    def test_third_party_option(self):
        r = rule("||fp.net^$third-party")
        assert r.matches("https://fp.net/x.js", third_party=True)
        assert not r.matches("https://fp.net/x.js", third_party=False)

    def test_first_party_only_option(self):
        r = rule("||fp.net^$~third-party")
        assert r.matches("https://fp.net/x.js", third_party=False)
        assert not r.matches("https://fp.net/x.js", third_party=True)

    def test_domain_restriction(self):
        r = rule("/track.js$domain=news.com|shop.com")
        assert r.matches("https://cdn.x.com/track.js", page_domain="news.com")
        assert r.matches("https://cdn.x.com/track.js", page_domain="sub.shop.com")
        assert not r.matches("https://cdn.x.com/track.js", page_domain="blog.org")
        assert not r.matches("https://cdn.x.com/track.js", page_domain=None)

    def test_domain_exclusion(self):
        r = rule("/track.js$domain=~safe.com")
        assert r.matches("https://x.com/track.js", page_domain="other.com")
        assert not r.matches("https://x.com/track.js", page_domain="safe.com")

    def test_multiple_options(self):
        r = rule("||fp.net^$script,third-party")
        assert r.matches("https://fp.net/x.js", resource_type="script", third_party=True)
        assert not r.matches("https://fp.net/x.js", resource_type="script", third_party=False)
        assert not r.matches("https://fp.net/x.gif", resource_type="image", third_party=True)


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=10))
def test_host_anchor_property(domain):
    r = parse_rule(f"||{domain}.com^")
    assert r.matches(f"https://{domain}.com/anything.js")
    assert r.matches(f"https://sub.{domain}.com/anything.js")
    assert not r.matches(f"https://{domain}.org/anything.js")
