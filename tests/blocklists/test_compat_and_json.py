"""Tests for the adblockparser compatibility shim and Disconnect JSON."""

import pytest

from repro.blocklists.adblockparser_compat import AdblockRule, AdblockRules
from repro.blocklists.disconnect import DisconnectList


class TestAdblockRulesCompat:
    """The paper's §5.1 call shape: AdblockRules(...).should_block(url, opts)."""

    @pytest.fixture
    def rules(self):
        return AdblockRules(
            [
                "! comment line",
                "||tracker.net^$script",
                "||ads.example^$third-party",
                "@@||tracker.net/ok.js$script",
                "||broken.example^$unsupportedoption",  # skipped
                "||mgid-like.com^$document",
            ]
        )

    def test_should_block_with_script_option(self, rules):
        assert rules.should_block("https://tracker.net/fp.js", {"script": True})

    def test_exception_respected(self, rules):
        assert not rules.should_block("https://tracker.net/ok.js", {"script": True})

    def test_document_modifier_semantics(self, rules):
        assert not rules.should_block("https://mgid-like.com/fp.js", {"script": True})
        assert rules.should_block("https://mgid-like.com/", {"document": True})

    def test_third_party_option(self, rules):
        url = "https://ads.example/x.js"
        assert rules.should_block(url, {"script": True, "third-party": True})
        assert not rules.should_block(url, {"script": True, "third-party": False})

    def test_unsupported_rules_skipped(self, rules):
        assert not rules.should_block("https://broken.example/x.js", {"script": True})

    def test_unsupported_raises_when_asked(self):
        with pytest.raises(ValueError):
            AdblockRules(["||x.com^$nosuchopt"], skip_unsupported_rules=False)

    def test_no_options(self, rules):
        assert rules.should_block("https://tracker.net/fp.js") is False  # script-only rule


class TestAdblockRule:
    def test_options_surface(self):
        rule = AdblockRule("||x.com^$script,third-party,domain=a.com|~b.com")
        opts = rule.options
        assert opts["script"] is True
        assert opts["third-party"] is True
        assert opts["domain"] == {"a.com": True, "b.com": False}

    def test_match_url(self):
        rule = AdblockRule("||x.com^$script")
        assert rule.match_url("https://x.com/a.js", {"script": True})
        assert not rule.match_url("https://y.com/a.js", {"script": True})

    def test_comment_rejected(self):
        with pytest.raises(ValueError):
            AdblockRule("! just a comment")

    def test_exception_flag(self):
        assert AdblockRule("@@||x.com^").is_exception


class TestDisconnectJSON:
    def test_roundtrip(self):
        dl = DisconnectList()
        dl.add("mail.ru", "FingerprintingInvasive")
        dl.add("adsco.re", "Advertising")
        dl.add("acint.net", "Analytics")
        data = dl.to_json()
        restored = DisconnectList.from_json(data)
        assert restored.domains() == dl.domains()
        assert restored.category_of("mail.ru") == "FingerprintingInvasive"
        assert restored.category_of("adsco.re") == "Advertising"

    def test_json_layout(self):
        dl = DisconnectList()
        dl.add("fp-vendor.io", "FingerprintingInvasive")
        data = dl.to_json()
        assert "FingerprintingInvasive" in data["categories"]
        (entity,) = data["categories"]["FingerprintingInvasive"].values()
        assert entity == {"https://fp-vendor.io/": ["fp-vendor.io"]}

    def test_from_json_skips_unknown_categories(self):
        data = {"categories": {"NotReal": {"X": {"https://x.com/": ["x.com"]}}}}
        assert len(DisconnectList.from_json(data)) == 0


class TestTextMetricsExtended:
    def test_bounding_box_fields_in_js(self):
        from repro.browser import Browser
        from repro.net import Network

        net = Network()
        net.server_for("m.example").add_resource(
            "/",
            """<script>
            var c = document.createElement('canvas');
            var g = c.getContext('2d');
            g.font = '16px Arial';
            var m = g.measureText('metrics');
            console.log(m.width > 0, m.actualBoundingBoxAscent > m.actualBoundingBoxDescent,
                        m.actualBoundingBoxRight === m.width);
            </script>""",
        )
        page = Browser(net).load("https://m.example/")
        assert page.console == ["true true true"]
