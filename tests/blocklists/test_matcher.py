"""Tests for the RuleMatcher and DisconnectList."""

from repro.blocklists.disconnect import DisconnectList
from repro.blocklists.matcher import RuleMatcher

import pytest

LIST_TEXT = """\
! Test list
||tracker.net^$script
||ads.example^$third-party
@@||tracker.net/allowed.js$script
||mgid-like.com^$document
/generic-fp.js$script
"""


@pytest.fixture
def matcher():
    return RuleMatcher.from_text(LIST_TEXT, name="test")


class TestShouldBlock:
    def test_blocks_matching_script(self, matcher):
        assert matcher.should_block("https://tracker.net/fp.js", "script")

    def test_exception_rule_wins(self, matcher):
        assert not matcher.should_block("https://tracker.net/allowed.js", "script")

    def test_third_party_context(self, matcher):
        url = "https://ads.example/x.js"
        assert matcher.should_block(url, "script", third_party=True)
        assert not matcher.should_block(url, "script", third_party=False)

    def test_document_rule_misses_script_requests(self, matcher):
        assert not matcher.should_block("https://mgid-like.com/fp.js", "script")
        assert matcher.should_block("https://mgid-like.com/", "document")

    def test_unlisted_url_not_blocked(self, matcher):
        assert not matcher.should_block("https://benign.org/app.js", "script")

    def test_first_match_returns_rule(self, matcher):
        rule = matcher.first_match("https://tracker.net/fp.js", "script")
        assert rule is not None and "tracker.net" in rule.raw


class TestListedStaticCheck:
    """The §5.1 static check ignores context that blocks in practice."""

    def test_listed_ignores_third_party_context(self, matcher):
        # ads.example is $third-party; static check still counts it as listed.
        assert matcher.listed("https://ads.example/x.js", "script")

    def test_listed_respects_resource_type(self, matcher):
        # $document rules do not list script resources (A.6).
        assert not matcher.listed("https://mgid-like.com/fp.js", "script")

    def test_listed_ignores_exception_rules(self, matcher):
        assert matcher.listed("https://tracker.net/allowed.js", "script")

    def test_len(self, matcher):
        assert len(matcher) == 5


class TestDisconnect:
    def test_domain_and_subdomain(self):
        dl = DisconnectList()
        dl.add("fingerprinter.io")
        assert dl.contains_url("https://fingerprinter.io/x.js")
        assert dl.contains_url("https://cdn.fingerprinter.io/x.js")
        assert not dl.contains_url("https://other.io/x.js")

    def test_category(self):
        dl = DisconnectList()
        dl.add("ads.biz", "Advertising")
        assert dl.category_of("sub.ads.biz") == "Advertising"
        assert dl.category_of("nope.com") is None

    def test_bad_category_rejected(self):
        dl = DisconnectList()
        with pytest.raises(ValueError):
            dl.add("x.com", "NotACategory")

    def test_add_all_and_len(self):
        dl = DisconnectList()
        dl.add_all(["a.com", "b.com"])
        assert len(dl) == 2
        assert dl.domains() == {"a.com", "b.com"}
