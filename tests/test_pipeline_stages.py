"""End-to-end stage pipeline: serial/parallel/cached equivalence."""

import pytest

from repro.config import StudyScale
from repro.core.stages import StudyContext, build_study_graph
from repro.webgen import build_world

SCALE = StudyScale(fraction=0.01, seed=909)


def fresh_world():
    return build_world(SCALE)


@pytest.fixture(scope="module")
def serial_result():
    return fresh_world().run_full_study()


class TestSerialParallelCachedEquivalence:
    def test_parallel_cached_run_equals_serial_uncached(self, serial_result, tmp_path):
        """jobs=4 + cold cache: same StudyResult as the serial monolith path."""
        parallel = fresh_world().run_full_study(jobs=4, cache_dir=tmp_path / "cache")
        assert parallel == serial_result
        assert all(not t.cached for t in parallel.stage_timings)

    def test_warm_cache_runs_zero_page_loads(self, serial_result, tmp_path):
        cache_dir = tmp_path / "cache"
        fresh_world().run_full_study(jobs=2, cache_dir=cache_dir)

        world = fresh_world()
        served_before = world.network.requests_served
        warm = world.run_full_study(jobs=2, cache_dir=cache_dir)
        assert world.network.requests_served == served_before
        assert all(t.cached for t in warm.stage_timings)
        assert warm == serial_result

    def test_stage_timings_are_recorded_but_not_compared(self, serial_result):
        timings = serial_result.stage_timings
        assert timings, "a graph run must record per-stage timings"
        names = [t.name for t in timings]
        for expected in ("crawl.control", "detect", "cluster", "prevalence",
                         "reach", "signatures", "attribution", "serving_context"):
            assert expected in names
        assert all(t.seconds >= 0 for t in timings)

    def test_optional_stages_follow_monolith_conditionals(self):
        result = fresh_world().run_full_study(include_adblock_crawls=False)
        names = {t.name for t in result.stage_timings}
        assert "crawl.abp" not in names and "adblock_rows" not in names
        assert result.adblock_rows == ()
        assert result.blocklist_context is not None  # world ships all lists


class TestStageSelection:
    def test_stage_subset_runs_only_dependency_closure(self):
        result = fresh_world().run_full_study(stages=["prevalence"])
        names = {t.name for t in result.stage_timings}
        assert names == {"crawl.control", "reduce", "prevalence"}
        assert result.prevalence is not None
        assert result.reach is None
        assert result.signatures == []


class TestCacheInvalidation:
    def _ctx(self, world, **overrides):
        kwargs = dict(
            network=world.network,
            targets=world.all_targets,
            vendor_knowledge=world.vendor_knowledge(),
            easylist_text=world.easylist_text,
            easyprivacy_text=world.easyprivacy_text,
            disconnect=world.disconnect,
            ubo_extra_text=world.ubo_extra_text,
            dns=world.network.dns,
        )
        kwargs.update(overrides)
        return StudyContext(**kwargs)

    def _keys(self, ctx):
        graph = build_study_graph(ctx)
        keys = {}
        for stage in graph.order:
            keys[stage.name] = stage.cache_key(ctx, keys)
        return keys

    def test_jobs_do_not_change_any_cache_key(self):
        world = build_world(SCALE)
        k1 = self._keys(self._ctx(world, jobs=1))
        k4 = self._keys(self._ctx(world, jobs=4))
        assert k1 == k4

    def test_blocklist_change_invalidates_only_dependent_stages(self):
        world = build_world(SCALE)
        base = self._keys(self._ctx(world))
        changed = self._keys(
            self._ctx(world, easylist_text=world.easylist_text + "\n||extra-rule.example^")
        )
        # The control crawl never sees the blocklists...
        assert base["crawl.control"] == changed["crawl.control"]
        assert base["detect"] == changed["detect"]
        assert base["cluster"] == changed["cluster"]
        # ...but the ad-blocker crawls and their comparison do.
        assert base["crawl.abp"] != changed["crawl.abp"]
        assert base["crawl.ubo"] != changed["crawl.ubo"]
        assert base["adblock_rows"] != changed["adblock_rows"]

    def test_network_content_change_invalidates_crawls(self):
        world = build_world(SCALE)
        base = self._keys(self._ctx(world))
        any_host = next(iter(world.network.servers()))
        world.network.server_for(any_host).add_resource("/new", "<html>changed</html>")
        changed = self._keys(self._ctx(world))
        assert base["crawl.control"] != changed["crawl.control"]
        assert base["detect"] != changed["detect"]  # chained invalidation


class TestSurrogatePreviews:
    def test_emoji_surrogate_pairs_normalized_at_recording(self):
        """UTF-16 surrogate pairs in JS strings must survive JSON round-trips,
        or cached/checkpointed datasets would differ from in-memory ones."""
        import json

        from repro.crawler.crawl import CrawlTarget, run_crawl
        from repro.core.records import SiteObservation
        from repro.net.server import Network

        network = Network()
        network.server_for("emoji.example").add_resource(
            "/",
            "<html><script>"
            "var c = document.createElement('canvas');"
            "c.width = 200; c.height = 40;"
            "var g = c.getContext('2d');"
            "g.fillText('\\ud83d\\ude03 probe', 2, 20);"
            "window.__x = c.toDataURL();"
            "</script></html>",
        )
        dataset = run_crawl(network, [CrawlTarget("emoji.example", 1, "top")])
        obs = dataset.observations[0]
        roundtripped = SiteObservation.from_json(json.loads(json.dumps(obs.to_json())))
        assert roundtripped == obs
        texts = [
            a
            for call in obs.calls
            if call.method == "fillText"
            for a in call.args
            if isinstance(a, str)
        ]
        assert any("\N{SMILING FACE WITH OPEN MOUTH}" in t for t in texts)
