"""The render-acceleration caches must be exactly transparent and bounded.

Every test compares cached renders against the ground truth of a run with
the caches disabled: transparency means byte-identical ``toDataURL`` output
(including lossy formats), not "close enough".  Boundedness means the LRU
byte budgets hold under adversarial workloads and eviction keeps outputs
correct.
"""

import math

import numpy as np
import pytest

from repro import perf
from repro.canvas import HTMLCanvasElement, INTEL_UBUNTU


@pytest.fixture(autouse=True)
def cache_sandbox():
    """Every test starts cold and leaves the session config untouched."""
    saved = perf.current_config()
    perf.configure(perf.RenderCacheConfig())
    perf.reset_all()
    yield
    perf.configure(saved)
    perf.reset_all()


def make_canvas(w=120, h=80, device=INTEL_UBUNTU):
    c = HTMLCanvasElement(w, h, device=device)
    return c, c.getContext("2d")


def draw_fingerprint(ctx):
    ctx.textBaseline = "top"
    ctx.font = "11pt Arial"
    ctx.fillStyle = "#f60"
    ctx.fillRect(10, 1, 62, 20)
    ctx.fillStyle = "#069"
    ctx.fillText("Cwm fjordbank", 2, 15)
    ctx.globalCompositeOperation = "multiply"
    ctx.fillStyle = "#2ff"
    ctx.beginPath()
    ctx.arc(60, 50, 25, 0, math.pi * 2, True)
    ctx.fill()


def render_outputs(draw, mimes=(("image/png", None), ("image/jpeg", 0.6), ("image/webp", 0.6))):
    c, ctx = make_canvas()
    draw(ctx)
    return tuple(c.toDataURL(mime, q) for mime, q in mimes)


def transparent(draw):
    """Disabled / cold / warm renders of ``draw`` must be byte-identical."""
    perf.configure(perf.RenderCacheConfig(enabled=False))
    disabled = render_outputs(draw)
    perf.configure(perf.RenderCacheConfig())
    perf.reset_all()
    cold = render_outputs(draw)
    warm = render_outputs(draw)
    assert disabled == cold == warm
    return disabled


class TestTransparency:
    def test_fingerprint_workload_all_formats(self):
        outputs = transparent(draw_fingerprint)
        assert perf.PERF.snapshot()["render_cache"]["hits"] >= 1
        assert outputs[0].startswith("data:image/png")
        assert outputs[1].startswith("data:image/jpeg")

    def test_gradient_and_shadow_workload(self):
        def draw(ctx):
            grad = ctx.createLinearGradient(0, 0, 120, 0)
            grad.add_color_stop(0, "#000")
            grad.add_color_stop(1, "#fff")
            ctx.fillStyle = grad
            ctx.shadowBlur = 3
            ctx.shadowColor = "#345"
            ctx.fillRect(5, 5, 100, 60)

        transparent(draw)

    def test_transform_and_clip_workload(self):
        def draw(ctx):
            ctx.translate(10, 10)
            ctx.rotate(0.3)
            ctx.beginPath()
            ctx.rect(0, 0, 60, 40)
            ctx.clip()
            ctx.fillStyle = "#d33"
            ctx.fillRect(-5, -5, 120, 80)

        transparent(draw)

    def test_put_image_data_workload(self):
        def draw(ctx):
            ctx.fillStyle = "#0aa"
            ctx.fillRect(0, 0, 40, 40)
            block = ctx.getImageData(0, 0, 20, 20)
            ctx.putImageData(block, 50, 30)

        transparent(draw)

    def test_clear_rect_workload(self):
        def draw(ctx):
            ctx.fillStyle = "#333"
            ctx.fillRect(0, 0, 120, 80)
            ctx.clearRect(20, 20, 40, 30)
            ctx.fillStyle = "#f60"
            ctx.fillRect(25, 25, 10, 10)

        transparent(draw)

    def test_draw_image_workload(self):
        def draw(ctx):
            src = HTMLCanvasElement(30, 30, device=INTEL_UBUNTU)
            sctx = src.getContext("2d")
            sctx.fillStyle = "#909"
            sctx.fillRect(0, 0, 30, 30)
            ctx.drawImage(src, 10, 10)
            ctx.drawImage(src, 40, 20, 60, 40)

        transparent(draw)


class TestContentKeying:
    def test_put_image_data_content_changes_key(self):
        """Two canvases differing only in pasted pixel *content* never share
        a cache entry (the op key carries a content digest, not an id)."""

        def render(fill):
            c, ctx = make_canvas()
            src = HTMLCanvasElement(20, 20, device=INTEL_UBUNTU)
            sctx = src.getContext("2d")
            sctx.fillStyle = fill
            sctx.fillRect(0, 0, 20, 20)
            ctx.putImageData(sctx.getImageData(0, 0, 20, 20), 5, 5)
            return c.toDataURL()

        assert render("#111") != render("#999")
        assert render("#111") == render("#111")

    def test_clear_rect_coords_change_key(self):
        def render(x):
            c, ctx = make_canvas()
            ctx.fillStyle = "#333"
            ctx.fillRect(0, 0, 120, 80)
            ctx.clearRect(x, 10, 30, 30)
            return c.toDataURL()

        assert render(10) != render(50)

    def test_mutating_path_after_fill_does_not_corrupt(self):
        """fill() snapshots the path: later path edits must not leak into
        the deferred op."""
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.rect(10, 10, 30, 30)
        ctx.fill()
        ctx.lineTo(200, 200)  # mutates the live path, not the queued op
        cached = c.toDataURL()

        perf.configure(perf.RenderCacheConfig(enabled=False))
        c2, ctx2 = make_canvas()
        ctx2.beginPath()
        ctx2.rect(10, 10, 30, 30)
        ctx2.fill()
        ctx2.lineTo(200, 200)
        assert cached == c2.toDataURL()

    def test_mutating_gradient_after_fill_does_not_corrupt(self):
        """A draw captures the gradient's stops at call time."""

        def render(enabled):
            perf.configure(perf.RenderCacheConfig(enabled=enabled))
            c, ctx = make_canvas()
            grad = ctx.createLinearGradient(0, 0, 120, 0)
            grad.add_color_stop(0, "#000")
            ctx.fillStyle = grad
            ctx.fillRect(0, 0, 120, 40)
            grad.add_color_stop(1, "#fff")  # after the draw: second rect only
            ctx.fillRect(0, 40, 120, 40)
            return c.toDataURL()

        assert render(True) == render(False)

    def test_device_profile_partitions_cache(self):
        from repro.canvas import APPLE_M1

        def render(device):
            c = HTMLCanvasElement(120, 80, device=device)
            draw_fingerprint(c.getContext("2d"))
            return c.toDataURL()

        assert render(INTEL_UBUNTU) != render(APPLE_M1)


class TestBoundedness:
    def test_render_cache_respects_byte_budget(self):
        from repro.canvas import context2d

        # ~120x80 float64 RGBA snapshot is ~300 KB; budget two of them.
        budget = 2 * 120 * 80 * 4 * 8
        perf.configure(perf.RenderCacheConfig(render_cache_bytes=budget))
        for i in range(8):
            c, ctx = make_canvas()
            ctx.fillStyle = "#3%d%d" % (i, i)
            ctx.fillRect(0, 0, 100 + i, 60)
            c.toDataURL()
        cache = context2d._RENDER_CACHE
        assert cache.resident_bytes <= budget
        assert perf.PERF.snapshot()["render_cache"]["evictions"] >= 1

    def test_oversized_value_never_resident(self):
        from repro.canvas import context2d

        perf.configure(perf.RenderCacheConfig(render_cache_bytes=1024))
        c, ctx = make_canvas()
        ctx.fillRect(0, 0, 50, 50)
        c.toDataURL()
        assert context2d._RENDER_CACHE.resident_bytes == 0

    def test_eviction_keeps_outputs_correct(self):
        perf.configure(perf.RenderCacheConfig(render_cache_bytes=1))

        def render(i):
            c, ctx = make_canvas()
            ctx.fillStyle = "#456"
            ctx.fillRect(0, 0, 20 + i, 20)
            return c.toDataURL()

        thrashed = [render(i % 3) for i in range(9)]
        perf.configure(perf.RenderCacheConfig(enabled=False))
        truth = [render(i % 3) for i in range(9)]
        assert thrashed == truth


class TestConfig:
    def test_from_env_disable(self):
        cfg = perf.RenderCacheConfig.from_env({"REPRO_RENDER_CACHE": "0"})
        assert not cfg.enabled
        assert perf.RenderCacheConfig.from_env({}).enabled

    def test_from_env_budgets(self):
        cfg = perf.RenderCacheConfig.from_env(
            {"REPRO_RENDER_CACHE_RENDER_MB": "8", "REPRO_RENDER_CACHE_GLYPH_MB": "1.5"}
        )
        assert cfg.render_cache_bytes == 8 * 1024 * 1024
        assert cfg.glyph_cache_bytes == int(1.5 * 1024 * 1024)
        assert cfg.path_cache_bytes == perf.RenderCacheConfig().path_cache_bytes

    def test_from_env_garbage_budget_ignored(self):
        cfg = perf.RenderCacheConfig.from_env({"REPRO_RENDER_CACHE_RENDER_MB": "lots"})
        assert cfg.render_cache_bytes == perf.RenderCacheConfig().render_cache_bytes

    def test_disable_mid_canvas_stays_correct(self):
        """Ops queued while caching was on replay correctly after disable."""
        c, ctx = make_canvas()
        ctx.fillStyle = "#269"
        ctx.fillRect(0, 0, 60, 40)
        perf.configure(perf.RenderCacheConfig(enabled=False))
        ctx.fillStyle = "#900"
        ctx.fillRect(30, 20, 60, 40)
        mixed = c.toDataURL()

        c2, ctx2 = make_canvas()
        ctx2.fillStyle = "#269"
        ctx2.fillRect(0, 0, 60, 40)
        ctx2.fillStyle = "#900"
        ctx2.fillRect(30, 20, 60, 40)
        assert mixed == c2.toDataURL()

    def test_counters_report_through_snapshot(self):
        draw = draw_fingerprint
        render_outputs(draw)
        render_outputs(draw)
        snap = perf.PERF.snapshot()
        row = snap["render_cache"]
        assert row["hits"] >= 1 and row["misses"] >= 1
        assert 0.0 < row["hit_rate"] < 1.0
        merged = perf.PerfCounters()
        merged.merge(snap)
        merged.merge(snap)
        assert merged.snapshot()["render_cache"]["hits"] == 2 * row["hits"]

    def test_pixel_identity_cold_vs_warm(self):
        """Beyond the encoded URL: raw pixels of a cache hit are identical."""
        c1, ctx1 = make_canvas()
        draw_fingerprint(ctx1)
        cold = c1.read_pixels().copy()
        c2, ctx2 = make_canvas()
        draw_fingerprint(ctx2)
        warm = c2.read_pixels()
        assert np.array_equal(cold, warm)
