"""Tests for canvas clipping."""

import math

from repro.canvas import HTMLCanvasElement, INTEL_UBUNTU


def make_canvas(w=60, h=60):
    c = HTMLCanvasElement(w, h, device=INTEL_UBUNTU)
    return c, c.getContext("2d")


class TestClip:
    def test_fill_restricted_to_clip(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.rect(10, 10, 20, 20)
        ctx.clip()
        ctx.fillStyle = "red"
        ctx.fillRect(0, 0, 60, 60)
        px = c.read_pixels()
        assert px[15, 15, 0] == 255   # inside clip
        assert px[45, 45, 0] == 0     # outside clip
        assert px[5, 5, 0] == 0

    def test_circular_clip(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.arc(30, 30, 15, 0, 2 * math.pi)
        ctx.clip()
        ctx.fillStyle = "lime"
        ctx.fillRect(0, 0, 60, 60)
        px = c.read_pixels()
        assert px[30, 30, 1] > 200
        assert px[30, 30 + 20, 1] == 0  # beyond the radius

    def test_nested_clips_intersect(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.rect(0, 0, 40, 60)
        ctx.clip()
        ctx.beginPath()
        ctx.rect(20, 0, 40, 60)
        ctx.clip()
        ctx.fillStyle = "white"
        ctx.fillRect(0, 0, 60, 60)
        px = c.read_pixels()
        assert px[30, 30, 0] > 200    # in both rects (20..40)
        assert px[30, 10, 0] == 0     # only in the first
        assert px[30, 50, 0] == 0     # only in the second

    def test_restore_removes_clip(self):
        c, ctx = make_canvas()
        ctx.save()
        ctx.beginPath()
        ctx.rect(0, 0, 10, 10)
        ctx.clip()
        ctx.restore()
        ctx.fillStyle = "blue"
        ctx.fillRect(0, 0, 60, 60)
        assert c.read_pixels()[50, 50, 2] == 255

    def test_clip_applies_to_text(self):
        c, ctx = make_canvas(120, 40)
        ctx.beginPath()
        ctx.rect(0, 0, 30, 40)
        ctx.clip()
        ctx.font = "16px Arial"
        ctx.fillStyle = "white"
        ctx.fillText("clipped text run", 2, 25)
        px = c.read_pixels()
        assert px[:, :30, 0].sum() > 0      # ink inside the clip
        assert px[:, 31:, 0].sum() == 0     # nothing escapes it

    def test_clip_via_js(self):
        from repro.browser import Browser
        from repro.net import Network

        net = Network()
        net.server_for("clip.example").add_resource(
            "/",
            """<script>
            var c = document.createElement('canvas');
            c.width = 40; c.height = 40;
            var g = c.getContext('2d');
            g.beginPath();
            g.rect(0, 0, 20, 40);
            g.clip();
            g.fillStyle = '#ffffff';
            g.fillRect(0, 0, 40, 40);
            var d = g.getImageData(0, 0, 40, 40);
            console.log(d.data[0], d.data[4 * (40 * 10 + 30)]);
            </script>""",
        )
        page = Browser(net).load("https://clip.example/")
        assert page.console == ["255 0"]
