"""Tests for the 2D context: drawing, state, transforms, and the
fingerprinting-critical determinism properties."""

import math

import numpy as np
import pytest

from repro.canvas import APPLE_M1, INTEL_UBUNTU, HTMLCanvasElement


def make_canvas(w=100, h=60, device=INTEL_UBUNTU):
    c = HTMLCanvasElement(w, h, device=device)
    return c, c.getContext("2d")


class TestElementBasics:
    def test_default_size(self):
        c = HTMLCanvasElement()
        assert (c.width, c.height) == (300, 150)

    def test_set_dimensions_resets_surface(self):
        c, ctx = make_canvas()
        ctx.fillRect(0, 0, 100, 60)
        c.width = 100
        assert not c.read_pixels().any()

    def test_invalid_dimension_uses_default(self):
        c = HTMLCanvasElement()
        c.width = -5
        assert c.width == 300
        c.height = "bogus"
        assert c.height == 150

    def test_get_context_2d_is_singleton(self):
        c = HTMLCanvasElement()
        assert c.getContext("2d") is c.getContext("2d")

    def test_get_context_unknown_returns_none(self):
        assert HTMLCanvasElement().getContext("webgl") is None

    def test_to_data_url_is_png_by_default(self):
        c, _ = make_canvas()
        assert c.toDataURL().startswith("data:image/png;base64,")

    def test_to_data_url_jpeg(self):
        c, _ = make_canvas()
        assert c.toDataURL("image/jpeg").startswith("data:image/jpeg;base64,")

    def test_unknown_mime_falls_back_to_png(self):
        c, _ = make_canvas()
        assert c.toDataURL("image/tiff").startswith("data:image/png;base64,")


class TestRects:
    def test_fill_rect_solid_interior(self):
        c, ctx = make_canvas()
        ctx.fillStyle = "#ff0000"
        ctx.fillRect(10, 10, 20, 20)
        px = c.read_pixels()
        assert tuple(px[20, 20]) == (255, 0, 0, 255)
        assert tuple(px[5, 5]) == (0, 0, 0, 0)

    def test_clear_rect(self):
        c, ctx = make_canvas()
        ctx.fillStyle = "blue"
        ctx.fillRect(0, 0, 100, 60)
        ctx.clearRect(10, 10, 10, 10)
        px = c.read_pixels()
        assert tuple(px[15, 15]) == (0, 0, 0, 0)
        assert tuple(px[5, 5]) == (0, 0, 255, 255)

    def test_stroke_rect_hollow(self):
        c, ctx = make_canvas()
        ctx.strokeStyle = "#00ff00"
        ctx.lineWidth = 2
        ctx.strokeRect(10, 10, 40, 30)
        px = c.read_pixels()
        assert px[10, 30, 1] > 0        # on the top edge
        assert px[25, 30, 1] == 0       # interior stays empty

    def test_fill_rect_out_of_bounds_clipped(self):
        c, ctx = make_canvas()
        ctx.fillRect(-50, -50, 1000, 1000)
        px = c.read_pixels()
        assert (px[..., 3] == 255).all()

    def test_alpha_fill(self):
        c, ctx = make_canvas()
        ctx.fillStyle = "rgba(255, 0, 0, 0.5)"
        ctx.fillRect(0, 0, 50, 50)
        px = c.read_pixels()
        assert 120 <= px[10, 10, 3] <= 135


class TestState:
    def test_invalid_fill_style_ignored(self):
        _, ctx = make_canvas()
        ctx.fillStyle = "#123456"
        ctx.fillStyle = "not-a-color"
        assert ctx.fillStyle == "#123456"

    def test_save_restore(self):
        _, ctx = make_canvas()
        ctx.fillStyle = "#111111"
        ctx.save()
        ctx.fillStyle = "#222222"
        ctx.restore()
        assert ctx.fillStyle == "#111111"

    def test_restore_without_save_is_noop(self):
        _, ctx = make_canvas()
        ctx.restore()  # must not raise

    def test_global_alpha_validation(self):
        _, ctx = make_canvas()
        ctx.globalAlpha = 0.5
        ctx.globalAlpha = 7  # invalid, ignored
        assert ctx.globalAlpha == 0.5

    def test_text_baseline_validation(self):
        _, ctx = make_canvas()
        ctx.textBaseline = "top"
        ctx.textBaseline = "bogus"
        assert ctx.textBaseline == "top"

    def test_line_width_validation(self):
        _, ctx = make_canvas()
        ctx.lineWidth = 3
        ctx.lineWidth = -1
        ctx.lineWidth = float("nan")
        assert ctx.lineWidth == 3


class TestPaths:
    def test_triangle_fill(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.moveTo(10, 50)
        ctx.lineTo(50, 50)
        ctx.lineTo(30, 10)
        ctx.closePath()
        ctx.fillStyle = "#0000ff"
        ctx.fill()
        px = c.read_pixels()
        assert px[45, 30, 2] > 200     # inside the triangle
        assert px[15, 10, 2] == 0      # outside

    def test_arc_circle(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.arc(50, 30, 20, 0, 2 * math.pi)
        ctx.fillStyle = "red"
        ctx.fill()
        px = c.read_pixels()
        assert px[30, 50, 0] > 200           # center filled
        assert px[30, 50 + 25, 0] == 0       # outside radius

    def test_negative_arc_radius_raises(self):
        _, ctx = make_canvas()
        with pytest.raises(ValueError):
            ctx.arc(0, 0, -1, 0, 1)

    def test_evenodd_winding_makes_hole(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.arc(50, 30, 25, 0, 2 * math.pi)
        ctx.arc(50, 30, 10, 0, 2 * math.pi)
        ctx.fillStyle = "black"
        ctx.fill("evenodd")
        px = c.read_pixels()
        assert px[30, 50, 3] == 0       # hole at center
        assert px[30, 50 + 18, 3] > 200  # ring filled

    def test_stroke_line(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.moveTo(10, 30)
        ctx.lineTo(90, 30)
        ctx.lineWidth = 4
        ctx.strokeStyle = "#ffffff"
        ctx.stroke()
        px = c.read_pixels()
        assert px[30, 50, 0] > 200
        assert px[10, 50, 0] == 0

    def test_bezier_curve_draws(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.moveTo(10, 50)
        ctx.bezierCurveTo(30, 0, 70, 0, 90, 50)
        ctx.lineWidth = 2
        ctx.strokeStyle = "white"
        ctx.stroke()
        assert c.read_pixels()[..., 0].sum() > 0

    def test_is_point_in_path(self):
        _, ctx = make_canvas()
        ctx.beginPath()
        ctx.rect(10, 10, 30, 30)
        assert ctx.isPointInPath(25, 25)
        assert not ctx.isPointInPath(5, 5)

    def test_begin_path_resets(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.rect(10, 10, 10, 10)
        ctx.beginPath()
        ctx.fill()
        assert not c.read_pixels().any()


class TestTransforms:
    def test_translate(self):
        c, ctx = make_canvas()
        ctx.translate(20, 10)
        ctx.fillRect(0, 0, 10, 10)
        px = c.read_pixels()
        assert px[15, 25, 3] == 255
        assert px[5, 5, 3] == 0

    def test_scale(self):
        c, ctx = make_canvas()
        ctx.scale(2, 2)
        ctx.fillRect(0, 0, 10, 10)
        px = c.read_pixels()
        assert px[15, 15, 3] == 255

    def test_rotate(self):
        c, ctx = make_canvas(100, 100)
        ctx.translate(50, 50)
        ctx.rotate(math.pi / 4)
        ctx.fillRect(-5, -30, 10, 60)
        px = c.read_pixels()
        # The bar's axis rotates onto the (-x, +y) diagonal in screen space.
        assert px[50 + 15, 50 - 15, 3] > 0
        assert px[50 + 25, 50, 3] == 0  # straight down is off-axis now

    def test_set_transform_overrides(self):
        c, ctx = make_canvas()
        ctx.translate(1000, 1000)
        ctx.setTransform(1, 0, 0, 1, 0, 0)
        ctx.fillRect(0, 0, 5, 5)
        assert c.read_pixels()[2, 2, 3] == 255

    def test_save_restore_covers_transform(self):
        c, ctx = make_canvas()
        ctx.save()
        ctx.translate(30, 30)
        ctx.restore()
        ctx.fillRect(0, 0, 5, 5)
        assert c.read_pixels()[2, 2, 3] == 255


class TestText:
    def test_fill_text_draws_ink(self):
        c, ctx = make_canvas(200, 40)
        ctx.font = "16px Arial"
        ctx.fillStyle = "#000000"
        ctx.fillRect(0, 0, 200, 40)  # black background
        ctx.fillStyle = "#ffffff"
        ctx.fillText("Hello, world!", 4, 24)
        px = c.read_pixels()
        assert (px[..., 0] > 128).sum() > 50  # plenty of white glyph pixels

    def test_empty_text_noop(self):
        c, ctx = make_canvas()
        ctx.fillText("", 10, 10)
        assert not c.read_pixels().any()

    def test_measure_text_monotone_in_length(self):
        _, ctx = make_canvas()
        ctx.font = "12px Arial"
        w1 = ctx.measureText("abc").width
        w2 = ctx.measureText("abcdef").width
        assert w2 > w1 > 0

    def test_measure_text_scales_with_size(self):
        _, ctx = make_canvas()
        ctx.font = "10px Arial"
        w_small = ctx.measureText("mmm").width
        ctx.font = "20px Arial"
        assert ctx.measureText("mmm").width > w_small * 1.5

    def test_emoji_renders_colored(self):
        c, ctx = make_canvas(60, 30)
        ctx.font = "20px Arial"
        ctx.fillText("\U0001f600", 5, 25)
        px = c.read_pixels()
        colored = px[(px[..., 3] > 0)]
        assert len(colored) > 0
        # Emoji tint: not pure black ink.
        assert (colored[:, :3].max(axis=1) > 0).any()

    def test_text_align_center_shifts_left(self):
        c1, ctx1 = make_canvas(200, 40)
        ctx1.font = "14px Arial"
        ctx1.fillText("wide text", 100, 30)
        c2, ctx2 = make_canvas(200, 40)
        ctx2.font = "14px Arial"
        ctx2.textAlign = "center"
        ctx2.fillText("wide text", 100, 30)
        cols1 = np.nonzero(c1.read_pixels()[..., 3].sum(axis=0))[0]
        cols2 = np.nonzero(c2.read_pixels()[..., 3].sum(axis=0))[0]
        assert cols2.min() < cols1.min()

    def test_max_width_squeezes(self):
        c, ctx = make_canvas(200, 40)
        ctx.font = "14px Arial"
        ctx.fillText("squeezed text here", 0, 30, 40)
        cols = np.nonzero(c.read_pixels()[..., 3].sum(axis=0))[0]
        assert cols.max() <= 45


class TestGradients:
    def test_linear_gradient_direction(self):
        c, ctx = make_canvas(100, 20)
        g = ctx.createLinearGradient(0, 0, 100, 0)
        g.add_color_stop(0.0, "#000000")
        g.add_color_stop(1.0, "#ffffff")
        ctx.fillStyle = g
        ctx.fillRect(0, 0, 100, 20)
        px = c.read_pixels()
        assert px[10, 5, 0] < 40 and px[10, 95, 0] > 215
        assert int(px[10, 50, 0]) == pytest.approx(128, abs=12)

    def test_radial_gradient_center(self):
        c, ctx = make_canvas(60, 60)
        g = ctx.createRadialGradient(30, 30, 0, 30, 30, 30)
        g.add_color_stop(0.0, "#ffffff")
        g.add_color_stop(1.0, "#000000")
        ctx.fillStyle = g
        ctx.fillRect(0, 0, 60, 60)
        px = c.read_pixels()
        assert px[30, 30, 0] > 200
        assert px[30, 58, 0] < 60

    def test_bad_stop_offset(self):
        _, ctx = make_canvas()
        g = ctx.createLinearGradient(0, 0, 1, 1)
        with pytest.raises(ValueError):
            g.add_color_stop(1.5, "red")


class TestComposite:
    def test_multiply_darkens(self):
        c, ctx = make_canvas(40, 40)
        ctx.fillStyle = "rgb(200, 200, 200)"
        ctx.fillRect(0, 0, 40, 40)
        ctx.globalCompositeOperation = "multiply"
        ctx.fillStyle = "rgb(128, 128, 128)"
        ctx.fillRect(0, 0, 40, 40)
        px = c.read_pixels()
        assert px[20, 20, 0] == pytest.approx(100, abs=3)

    def test_destination_over_preserves_existing(self):
        c, ctx = make_canvas(40, 40)
        ctx.fillStyle = "red"
        ctx.fillRect(0, 0, 40, 40)
        ctx.globalCompositeOperation = "destination-over"
        ctx.fillStyle = "blue"
        ctx.fillRect(0, 0, 40, 40)
        px = c.read_pixels()
        assert px[20, 20, 0] == 255 and px[20, 20, 2] == 0

    def test_unknown_op_falls_back_to_source_over(self):
        c, ctx = make_canvas(10, 10)
        ctx.globalCompositeOperation = "no-such-op"
        ctx.fillStyle = "lime"
        ctx.fillRect(0, 0, 10, 10)
        assert c.read_pixels()[5, 5, 1] == 255


class TestImageData:
    def test_get_image_data_shape(self):
        _, ctx = make_canvas()
        data = ctx.getImageData(0, 0, 10, 8)
        assert data.pixels.shape == (8, 10, 4)
        assert data.data_length == 320

    def test_put_then_get_roundtrip(self):
        _, ctx = make_canvas()
        img = ctx.createImageData(4, 4)
        img.pixels[...] = 77
        ctx.putImageData(img, 2, 3)
        out = ctx.getImageData(2, 3, 4, 4)
        assert (out.pixels == 77).all()

    def test_get_image_data_clamps_edges(self):
        _, ctx = make_canvas(20, 20)
        data = ctx.getImageData(15, 15, 10, 10)
        assert data.pixels.shape == (10, 10, 4)

    def test_empty_region_raises(self):
        _, ctx = make_canvas()
        with pytest.raises(ValueError):
            ctx.getImageData(0, 0, 0, 5)

    def test_draw_image_copies_canvas(self):
        src, sctx = make_canvas(20, 20)
        sctx.fillStyle = "red"
        sctx.fillRect(0, 0, 20, 20)
        dst, dctx = make_canvas(60, 60)
        dctx.drawImage(src, 10, 10)
        px = dst.read_pixels()
        assert px[15, 15, 0] == 255
        assert px[5, 5, 0] == 0


class TestFingerprintingProperties:
    """The invariants the entire measurement methodology rests on."""

    @staticmethod
    def draw_test_canvas(device):
        c, ctx = make_canvas(220, 40, device=device)
        ctx.textBaseline = "alphabetic"
        ctx.fillStyle = "#f60"
        ctx.fillRect(100, 1, 62, 20)
        ctx.fillStyle = "#069"
        ctx.font = "11pt Arial"
        ctx.fillText("Cwm fjordbank glyphs vext quiz", 2, 15)
        ctx.fillStyle = "rgba(102, 204, 0, 0.7)"
        ctx.font = "18pt Arial"
        ctx.fillText("Cwm fjordbank glyphs vext quiz", 4, 35)
        return c.toDataURL()

    def test_same_device_identical_output(self):
        assert self.draw_test_canvas(INTEL_UBUNTU) == self.draw_test_canvas(INTEL_UBUNTU)

    def test_different_devices_different_output(self):
        assert self.draw_test_canvas(INTEL_UBUNTU) != self.draw_test_canvas(APPLE_M1)

    def test_different_scripts_different_output(self):
        c1, ctx1 = make_canvas(220, 40)
        ctx1.font = "11pt Arial"
        ctx1.fillText("Vendor A pangram", 2, 15)
        c2, ctx2 = make_canvas(220, 40)
        ctx2.font = "11pt Arial"
        ctx2.fillText("Vendor B pangram", 2, 15)
        assert c1.toDataURL() != c2.toDataURL()

    def test_text_has_antialiased_edges(self):
        """Device noise only exists because edges are fractional."""
        c, ctx = make_canvas(220, 40)
        ctx.fillStyle = "#ffffff"
        ctx.font = "16px Arial"
        ctx.fillText("edge check", 2, 30)
        px = c.read_pixels()
        alphas = px[..., 3]
        partial = ((alphas > 0) & (alphas < 255)).sum()
        assert partial > 20

    def test_lossy_extraction_hides_device_difference(self):
        """Why the heuristics exclude JPEG: device noise mostly doesn't
        survive quantization, so lossy extractions are useless fingerprints."""
        from repro.canvas.encode import lossy_quantized_planes

        def pixels_of(device):
            c, ctx = make_canvas(220, 40, device=device)
            ctx.font = "16px Arial"
            ctx.fillStyle = "#ffffff"
            ctx.fillRect(0, 0, 220, 40)
            ctx.fillStyle = "#000000"
            ctx.fillText("lossy", 2, 30)
            return c.read_pixels()

        base = pixels_of(INTEL_UBUNTU)
        # Noise of AA amplitude (what distinguishes nearby rendering stacks
        # and what randomization defenses inject): +-2 channel units.
        rng = np.random.default_rng(7)
        noisy = base.astype(np.int16)
        noisy[..., :3] += rng.integers(-2, 3, size=noisy[..., :3].shape, dtype=np.int16)
        noisy = np.clip(noisy, 0, 255).astype(np.uint8)

        assert (base != noisy).mean() > 0.3  # PNG would expose all of it
        lossy_diff = (lossy_quantized_planes(base, 0.3) != lossy_quantized_planes(noisy, 0.3)).mean()
        assert lossy_diff < 0.005  # lossy extraction collapses it

    def test_extraction_filter_hook(self):
        c, ctx = make_canvas()
        ctx.fillRect(0, 0, 10, 10)
        seen = {}

        def spy(px):
            seen["shape"] = px.shape
            out = px.copy()
            out[0, 0, 0] ^= 1
            return out

        c.extraction_filter = spy
        url1 = c.toDataURL()
        c.extraction_filter = None
        url2 = c.toDataURL()
        assert seen["shape"] == (60, 100, 4)
        assert url1 != url2
