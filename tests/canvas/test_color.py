"""Tests for CSS color parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.canvas.color import ColorError, parse_color


class TestHex:
    def test_rrggbb(self):
        assert parse_color("#ff8000") == (255.0, 128.0, 0.0, 255.0)

    def test_short_rgb(self):
        assert parse_color("#f06") == (255.0, 0.0, 102.0, 255.0)

    def test_rrggbbaa(self):
        assert parse_color("#00000080") == (0.0, 0.0, 0.0, 128.0)

    def test_rgba_short(self):
        assert parse_color("#f068") == (255.0, 0.0, 102.0, 136.0)

    def test_case_insensitive(self):
        assert parse_color("#FF8000") == parse_color("#ff8000")

    @pytest.mark.parametrize("bad", ["#", "#f", "#ff", "#fffff", "#ggg", "#1234567"])
    def test_invalid_hex(self, bad):
        with pytest.raises(ColorError):
            parse_color(bad)


class TestFunctional:
    def test_rgb(self):
        assert parse_color("rgb(1, 2, 3)") == (1.0, 2.0, 3.0, 255.0)

    def test_rgba(self):
        assert parse_color("rgba(10, 20, 30, 0.5)") == (10.0, 20.0, 30.0, 127.5)

    def test_rgb_percent(self):
        assert parse_color("rgb(100%, 0%, 50%)") == (255.0, 0.0, 127.5, 255.0)

    def test_rgb_clamping(self):
        assert parse_color("rgb(300, -5, 128)") == (255.0, 0.0, 128.0, 255.0)

    def test_rgb_spaces(self):
        assert parse_color("rgb( 7 , 8 , 9 )") == (7.0, 8.0, 9.0, 255.0)

    def test_hsl_red(self):
        r, g, b, a = parse_color("hsl(0, 100%, 50%)")
        assert (round(r), round(g), round(b), a) == (255, 0, 0, 255.0)

    def test_hsl_gray(self):
        r, g, b, _ = parse_color("hsl(120, 0%, 50%)")
        assert round(r) == round(g) == round(b) == 128

    def test_hsla_alpha(self):
        assert parse_color("hsla(240, 100%, 50%, 0.25)")[3] == 63.75

    def test_invalid_component_count(self):
        with pytest.raises(ColorError):
            parse_color("rgb(1, 2)")


class TestNamed:
    def test_common_names(self):
        assert parse_color("black") == (0.0, 0.0, 0.0, 255.0)
        assert parse_color("white") == (255.0, 255.0, 255.0, 255.0)
        assert parse_color("orange") == (255.0, 165.0, 0.0, 255.0)

    def test_transparent(self):
        assert parse_color("transparent")[3] == 0.0

    def test_case_and_whitespace(self):
        assert parse_color("  NAVY ") == (0.0, 0.0, 128.0, 255.0)

    def test_unknown_name(self):
        with pytest.raises(ColorError):
            parse_color("notacolor")

    def test_non_string(self):
        with pytest.raises(ColorError):
            parse_color(42)

    def test_empty(self):
        with pytest.raises(ColorError):
            parse_color("   ")


@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
def test_hex_roundtrip(r, g, b):
    assert parse_color(f"#{r:02x}{g:02x}{b:02x}") == (float(r), float(g), float(b), 255.0)


@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
def test_rgb_matches_hex(r, g, b):
    assert parse_color(f"rgb({r}, {g}, {b})") == parse_color(f"#{r:02x}{g:02x}{b:02x}")


@given(st.floats(0, 1, allow_nan=False).map(lambda a: round(a, 3)))
def test_alpha_in_range(a):
    rgba = parse_color(f"rgba(0, 0, 0, {a})")
    assert 0.0 <= rgba[3] <= 255.0
