"""Additional 2D-context coverage: curves, alpha, stroke text, shadows."""

import math

import numpy as np
import pytest

from repro.canvas import HTMLCanvasElement, INTEL_UBUNTU


def make_canvas(w=100, h=60):
    c = HTMLCanvasElement(w, h, device=INTEL_UBUNTU)
    return c, c.getContext("2d")


class TestCurves:
    def test_ellipse_fill(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.ellipse(50, 30, 30, 15, 0, 0, 2 * math.pi)
        ctx.fillStyle = "red"
        ctx.fill()
        px = c.read_pixels()
        assert px[30, 50, 0] > 200        # center
        assert px[30, 75, 0] > 0          # inside long axis
        assert px[10, 50, 0] == 0         # above short axis

    def test_ellipse_rotation(self):
        c, ctx = make_canvas(100, 100)
        ctx.beginPath()
        ctx.ellipse(50, 50, 40, 8, math.pi / 2, 0, 2 * math.pi)
        ctx.fillStyle = "white"
        ctx.fill()
        px = c.read_pixels()
        # Rotated 90°: long axis now vertical.
        assert px[15, 50, 0] > 0
        assert px[50, 15, 0] == 0

    def test_negative_ellipse_radius_raises(self):
        _, ctx = make_canvas()
        with pytest.raises(ValueError):
            ctx.ellipse(0, 0, -1, 5, 0, 0, 1)

    def test_quadratic_curve(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.moveTo(10, 50)
        ctx.quadraticCurveTo(50, -30, 90, 50)
        ctx.lineWidth = 2
        ctx.strokeStyle = "white"
        ctx.stroke()
        px = c.read_pixels()
        # Apex of the curve: t=0.5 -> y = 0.25*50 + 0.5*(-30) + 0.25*50 = 10.
        assert px[9:12, 49:52, 0].max() > 0

    def test_arc_to_draws(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.moveTo(10, 50)
        ctx.arcTo(50, 10, 90, 50, 20)
        ctx.lineWidth = 2
        ctx.strokeStyle = "white"
        ctx.stroke()
        assert c.read_pixels()[..., 0].sum() > 0

    def test_partial_arc(self):
        c, ctx = make_canvas()
        ctx.beginPath()
        ctx.arc(50, 30, 20, 0, math.pi)  # bottom half
        ctx.fillStyle = "lime"
        ctx.fill()
        px = c.read_pixels()
        assert px[40, 50, 1] > 0          # below center: filled
        assert px[15, 50, 1] == 0         # above center: not


class TestAlphaAndText:
    def test_global_alpha_zero_paints_nothing(self):
        c, ctx = make_canvas()
        ctx.globalAlpha = 0.0
        ctx.fillRect(0, 0, 50, 50)
        assert not c.read_pixels().any()

    def test_global_alpha_scales(self):
        c, ctx = make_canvas()
        ctx.globalAlpha = 0.25
        ctx.fillStyle = "#ffffff"
        ctx.fillRect(0, 0, 50, 50)
        assert 55 <= c.read_pixels()[10, 10, 3] <= 73

    def test_stroke_text_draws(self):
        c, ctx = make_canvas(160, 40)
        ctx.font = "16px Arial"
        ctx.strokeStyle = "#ffffff"
        ctx.strokeText("outline", 4, 30)
        assert (c.read_pixels()[..., 0] > 0).sum() > 20

    def test_text_baseline_top_vs_alphabetic(self):
        rows = {}
        for baseline in ("top", "alphabetic"):
            c, ctx = make_canvas(120, 60)
            ctx.font = "14px Arial"
            ctx.textBaseline = baseline
            ctx.fillStyle = "white"
            ctx.fillText("Base", 2, 30)
            ink_rows = np.nonzero(c.read_pixels()[..., 3].sum(axis=1))[0]
            rows[baseline] = ink_rows.min()
        # top-baseline text starts lower (glyph hangs below y), alphabetic
        # text sits above y.
        assert rows["top"] > rows["alphabetic"]

    def test_shadow_properties_settable(self):
        _, ctx = make_canvas()
        ctx.shadowBlur = 4.0
        ctx.shadowColor = "rgba(0,0,0,0.5)"
        assert ctx.shadowBlur == 4.0
        ctx.shadowBlur = -1  # invalid, ignored
        assert ctx.shadowBlur == 4.0

    def test_gradient_as_stroke_style(self):
        c, ctx = make_canvas(100, 20)
        g = ctx.createLinearGradient(0, 0, 100, 0)
        g.add_color_stop(0, "#ff0000")
        g.add_color_stop(1, "#0000ff")
        ctx.strokeStyle = g
        ctx.lineWidth = 6
        ctx.beginPath()
        ctx.moveTo(0, 10)
        ctx.lineTo(100, 10)
        ctx.stroke()
        px = c.read_pixels()
        assert px[10, 5, 0] > px[10, 5, 2]    # red end
        assert px[10, 95, 2] > px[10, 95, 0]  # blue end


class TestDrawImageScaling:
    def test_scaled_draw(self):
        src, sctx = make_canvas(10, 10)
        sctx.fillStyle = "red"
        sctx.fillRect(0, 0, 10, 10)
        dst, dctx = make_canvas(60, 60)
        dctx.drawImage(src, 5, 5, 40, 40)
        px = dst.read_pixels()
        assert px[25, 25, 0] == 255
        assert px[50, 50, 0] == 0

    def test_draw_image_respects_translation(self):
        src, sctx = make_canvas(8, 8)
        sctx.fillStyle = "lime"
        sctx.fillRect(0, 0, 8, 8)
        dst, dctx = make_canvas(40, 40)
        dctx.translate(20, 20)
        dctx.drawImage(src, 0, 0)
        px = dst.read_pixels()
        assert px[24, 24, 1] == 255
        assert px[5, 5, 1] == 0
