"""Tests for shadow rendering."""

from repro.canvas import HTMLCanvasElement, INTEL_UBUNTU


def make_canvas(w=60, h=60):
    c = HTMLCanvasElement(w, h, device=INTEL_UBUNTU)
    return c, c.getContext("2d")


class TestShadows:
    def test_default_no_shadow(self):
        c, ctx = make_canvas()
        ctx.fillStyle = "red"
        ctx.fillRect(20, 20, 10, 10)
        px = c.read_pixels()
        assert px[35, 35, 3] == 0  # nothing painted beyond the rect

    def test_offset_shadow_painted(self):
        c, ctx = make_canvas()
        ctx.shadowColor = "rgba(0, 0, 0, 1)"
        ctx.shadowOffsetX = 8
        ctx.shadowOffsetY = 8
        ctx.fillStyle = "red"
        ctx.fillRect(10, 10, 10, 10)
        px = c.read_pixels()
        assert px[15, 15, 0] == 255          # the shape itself (red)
        assert px[25, 25, 3] == 255          # the shadow area is painted
        assert px[25, 25, 0] == 0            # and it is black, not red

    def test_blur_spreads_shadow(self):
        c, ctx = make_canvas()
        ctx.shadowColor = "#000000"
        ctx.shadowBlur = 10
        ctx.fillStyle = "white"
        ctx.fillRect(25, 25, 10, 10)
        px = c.read_pixels()
        # Blurred shadow bleeds beyond the rect with partial alpha.
        assert 0 < px[22, 30, 3] < 255

    def test_shadow_under_shape(self):
        c, ctx = make_canvas()
        ctx.shadowColor = "#00ff00"
        ctx.shadowOffsetX = 0
        ctx.shadowOffsetY = 0
        ctx.shadowBlur = 4
        ctx.fillStyle = "#ff0000"
        ctx.fillRect(20, 20, 20, 20)
        px = c.read_pixels()
        assert px[30, 30, 0] == 255 and px[30, 30, 1] < 100  # shape wins on top

    def test_transparent_shadow_color_noop(self):
        c, ctx = make_canvas()
        ctx.shadowBlur = 8
        # shadowColor stays at the default transparent black.
        ctx.fillStyle = "blue"
        ctx.fillRect(20, 20, 10, 10)
        px = c.read_pixels()
        assert px[15, 15, 3] == 0

    def test_shadow_via_js(self):
        from repro.browser import Browser
        from repro.net import Network

        net = Network()
        net.server_for("sh.example").add_resource(
            "/",
            """<script>
            var c = document.createElement('canvas');
            c.width = 40; c.height = 40;
            var g = c.getContext('2d');
            g.shadowColor = '#000000';
            g.shadowOffsetX = 6;
            g.shadowOffsetY = 6;
            g.fillStyle = '#ffffff';
            g.fillRect(5, 5, 10, 10);
            var d = g.getImageData(0, 0, 40, 40);
            console.log(d.data[4 * (40 * 8 + 8)], d.data[4 * (40 * 18 + 18) + 3]);
            </script>""",
        )
        page = Browser(net).load("https://sh.example/")
        assert page.console == ["255 255"]

    def test_shadow_changes_fingerprint(self):
        def draw(shadow):
            c, ctx = make_canvas()
            if shadow:
                ctx.shadowColor = "rgba(10, 10, 10, 0.6)"
                ctx.shadowBlur = 6
            ctx.font = "14px Arial"
            ctx.fillStyle = "#336699"
            ctx.fillText("shadow probe", 4, 30)
            return c.toDataURL()

        assert draw(True) != draw(False)
