"""Tests for font parsing, metrics, and device-dependent text rendering."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.canvas.device import APPLE_M1, INTEL_UBUNTU
from repro.canvas.font import FontSpec, TextRasterizer, parse_font
from repro.canvas.font_data import GLYPHS, GLYPH_HEIGHT


class TestParseFont:
    @pytest.mark.parametrize(
        "text,size,family,bold,italic",
        [
            ("10px sans-serif", 10.0, "sans-serif", False, False),
            ("11pt Arial", 11 * 4 / 3, "Arial", False, False),
            ("bold 16px Helvetica", 16.0, "Helvetica", True, False),
            ("italic 14px Georgia", 14.0, "Georgia", False, True),
            ("italic bold 2em Times", 32.0, "Times", True, True),
            ("600 12px Roboto", 12.0, "Roboto", True, False),
            ("14px 'Segoe UI', sans-serif", 14.0, "Segoe UI", False, False),
        ],
    )
    def test_cases(self, text, size, family, bold, italic):
        spec = parse_font(text)
        assert spec.size_px == pytest.approx(size)
        assert spec.family == family
        assert spec.bold is bold
        assert spec.italic is italic

    def test_empty_gives_default(self):
        assert parse_font("") == FontSpec()

    def test_family_only(self):
        spec = parse_font("Courier New, monospace")
        assert spec.family == "Courier New"
        assert spec.size_px == 10.0


class TestGlyphData:
    def test_all_printable_ascii_covered(self):
        for code in range(32, 127):
            assert chr(code) in GLYPHS, f"missing glyph for {chr(code)!r}"

    def test_rows_consistent(self):
        for ch, rows in GLYPHS.items():
            assert len(rows) == GLYPH_HEIGHT, ch
            widths = {len(r) for r in rows}
            assert len(widths) == 1, f"ragged glyph {ch!r}"

    def test_glyphs_visually_distinct(self):
        """No two printable glyphs may share a bitmap (fingerprint entropy)."""
        seen = {}
        for ch, rows in GLYPHS.items():
            key = tuple(rows)
            if ch == " ":
                continue
            assert key not in seen, f"{ch!r} duplicates {seen.get(key)!r}"
            seen[key] = ch


class TestMetrics:
    @pytest.fixture
    def raster(self):
        return TextRasterizer(INTEL_UBUNTU)

    def test_measure_empty(self, raster):
        assert raster.measure("", FontSpec()) == 0.0

    def test_measure_additive(self, raster):
        spec = FontSpec(size_px=14)
        ab = raster.measure("ab", spec)
        a = raster.measure("a", spec)
        b = raster.measure("b", spec)
        assert ab == pytest.approx(a + b, abs=0.01)

    def test_proportional_widths(self, raster):
        spec = FontSpec(size_px=14)
        assert raster.measure("i", spec) < raster.measure("m", spec)

    def test_device_metric_differences(self):
        spec = FontSpec(size_px=14)
        intel = TextRasterizer(INTEL_UBUNTU).measure("fingerprint", spec)
        m1 = TextRasterizer(APPLE_M1).measure("fingerprint", spec)
        assert intel != m1

    def test_family_changes_metrics(self, raster):
        a = raster.measure("sample", FontSpec(size_px=14, family="Arial"))
        b = raster.measure("sample", FontSpec(size_px=14, family="Courier"))
        assert a != b


class TestRendering:
    @pytest.fixture
    def raster(self):
        return TextRasterizer(INTEL_UBUNTU)

    def test_render_has_ink_and_edges(self, raster):
        coverage, colors, baseline = raster.render("Hello", FontSpec(size_px=16))
        assert coverage.sum() > 0
        assert colors is None
        assert baseline > 0
        fractional = ((coverage > 0) & (coverage < 1)).sum()
        assert fractional > 0  # smoothing guarantees AA edges

    def test_render_deterministic(self, raster):
        a, _, _ = raster.render("stable", FontSpec(size_px=14))
        b, _, _ = raster.render("stable", FontSpec(size_px=14))
        assert np.array_equal(a, b)

    def test_render_differs_across_devices(self):
        spec = FontSpec(size_px=16)
        a, _, _ = TextRasterizer(INTEL_UBUNTU).render("device test", spec)
        b, _, _ = TextRasterizer(APPLE_M1).render("device test", spec)
        assert a.shape != b.shape or not np.array_equal(a, b)

    def test_bold_is_heavier(self, raster):
        plain, _, _ = raster.render("weight", FontSpec(size_px=16))
        bold, _, _ = raster.render("weight", FontSpec(size_px=16, bold=True))
        assert bold.sum() > plain.sum()

    def test_italic_changes_shape(self, raster):
        plain, _, _ = raster.render("slant", FontSpec(size_px=16))
        italic, _, _ = raster.render("slant", FontSpec(size_px=16, italic=True))
        assert plain.shape != italic.shape or not np.array_equal(plain, italic)

    def test_emoji_gets_color_channel(self, raster):
        coverage, colors, _ = raster.render("\U0001f600", FontSpec(size_px=16))
        assert colors is not None
        assert (colors.sum(axis=2) > 0).any()

    def test_emoji_color_is_device_dependent(self):
        spec = FontSpec(size_px=16)
        _, intel_colors, _ = TextRasterizer(INTEL_UBUNTU).render("\U0001f600", spec)
        _, m1_colors, _ = TextRasterizer(APPLE_M1).render("\U0001f600", spec)
        assert intel_colors is not None and m1_colors is not None
        assert intel_colors.shape != m1_colors.shape or not np.array_equal(intel_colors, m1_colors)

    def test_unknown_latin_renders_tofu(self, raster):
        coverage, colors, _ = raster.render("ł", FontSpec(size_px=16))  # ł
        assert coverage.sum() > 0
        assert colors is None

    def test_baseline_shifts_ordered(self, raster):
        spec = FontSpec(size_px=16)
        top = raster.baseline_shift("top", spec)
        middle = raster.baseline_shift("middle", spec)
        alphabetic = raster.baseline_shift("alphabetic", spec)
        bottom = raster.baseline_shift("bottom", spec)
        assert top > middle > alphabetic > bottom


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=20))
def test_measure_positive_for_nonempty(text):
    raster = TextRasterizer(INTEL_UBUNTU)
    assert raster.measure(text, FontSpec(size_px=12)) > 0


@given(st.text(alphabet="abcdefghij XYZ", min_size=0, max_size=15))
def test_render_never_crashes_and_stays_in_range(text):
    raster = TextRasterizer(INTEL_UBUNTU)
    coverage, _, _ = raster.render(text, FontSpec(size_px=13))
    assert coverage.min() >= 0.0 and coverage.max() <= 1.0
