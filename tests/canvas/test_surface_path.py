"""Direct tests for the surface compositor and path rasterizer."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.canvas.device import INTEL_UBUNTU
from repro.canvas.geometry import Transform
from repro.canvas.path import Path, rasterize_fill, rasterize_stroke
from repro.canvas.surface import COMPOSITE_OPERATIONS, Surface


class TestSurface:
    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            Surface(0, 10)
        with pytest.raises(ValueError):
            Surface(10, -1)

    def test_starts_transparent(self):
        assert not Surface(8, 8).to_uint8().any()

    def test_paint_full_coverage(self):
        s = Surface(4, 4)
        s.paint(np.ones((4, 4)), (255.0, 0.0, 0.0, 255.0))
        px = s.to_uint8()
        assert (px[..., 0] == 255).all() and (px[..., 3] == 255).all()

    def test_paint_half_coverage_blends_alpha(self):
        s = Surface(2, 2)
        s.paint(np.full((2, 2), 0.5), (0.0, 0.0, 255.0, 255.0))
        px = s.to_uint8()
        assert 120 <= px[0, 0, 3] <= 135

    def test_paint_with_offset_clips(self):
        s = Surface(4, 4)
        s.paint(np.ones((4, 4)), (255.0, 255.0, 255.0, 255.0), offset=(2, 2))
        px = s.to_uint8()
        assert px[3, 3, 3] == 255 and px[0, 0, 3] == 0

    def test_paint_fully_outside_is_noop(self):
        s = Surface(4, 4)
        s.paint(np.ones((2, 2)), (255.0, 0.0, 0.0, 255.0), offset=(10, 10))
        assert not s.to_uint8().any()

    def test_source_over_layering(self):
        s = Surface(2, 2)
        s.paint(np.ones((2, 2)), (255.0, 0.0, 0.0, 255.0))
        s.paint(np.ones((2, 2)), (0.0, 255.0, 0.0, 255.0))
        px = s.to_uint8()
        assert px[0, 0, 1] == 255 and px[0, 0, 0] == 0

    def test_clear_rect_partial(self):
        s = Surface(4, 4)
        s.paint(np.ones((4, 4)), (255.0, 0.0, 0.0, 255.0))
        s.clear_rect(0, 0, 2, 2)
        px = s.to_uint8()
        assert px[1, 1, 3] == 0 and px[3, 3, 3] == 255

    def test_put_uint8_roundtrip(self):
        s = Surface(6, 6)
        block = np.full((3, 3, 4), 200, dtype=np.uint8)
        s.put_uint8(block, 2, 2)
        assert (s.to_uint8()[2:5, 2:5] == 200).all()

    @pytest.mark.parametrize("op", COMPOSITE_OPERATIONS)
    def test_all_ops_keep_channels_in_range(self, op):
        s = Surface(3, 3)
        s.paint(np.full((3, 3), 0.7), (200.0, 50.0, 120.0, 180.0))
        s.paint(np.full((3, 3), 0.6), (30.0, 220.0, 90.0, 200.0), op=op)
        px = s.to_uint8()
        assert px.min() >= 0 and px.max() <= 255


class TestPathConstruction:
    def test_empty_path(self):
        assert Path().is_empty()
        assert Path().bounds() is None

    def test_line_to_without_move_starts_subpath(self):
        p = Path()
        p.line_to(1, 1)
        assert p.current_point == (1, 1)

    def test_edges_close_open_subpaths_for_fill(self):
        p = Path()
        p.move_to(0, 0)
        p.line_to(10, 0)
        p.line_to(10, 10)
        edges = p.edges()
        assert edges.shape == (3, 4)  # two segments + implicit closer

    def test_contains_point_nonzero(self):
        p = Path()
        p.add_polyline([(0, 0), (10, 0), (10, 10), (0, 10)], closed=True)
        assert p.contains_point(5, 5)
        assert not p.contains_point(15, 5)

    def test_contains_point_evenodd_hole(self):
        p = Path()
        p.add_polyline([(0, 0), (20, 0), (20, 20), (0, 20)], closed=True)
        p.add_polyline([(5, 5), (15, 5), (15, 15), (5, 15)], closed=True)
        assert not p.contains_point(10, 10, "evenodd")
        assert p.contains_point(2, 2, "evenodd")


class TestRasterization:
    def square(self, x0=2, y0=2, size=6):
        p = Path()
        p.add_polyline(
            [(x0, y0), (x0 + size, y0), (x0 + size, y0 + size), (x0, y0 + size)], closed=True
        )
        return p

    def test_fill_integer_square_exact(self):
        coverage, (ox, oy) = rasterize_fill(self.square(), 20, 20)
        assert (ox, oy) == (1, 1)  # 1px AA padding
        inner = coverage[2:7, 2:7]
        assert np.allclose(inner, 1.0)

    def test_fill_fractional_edges(self):
        p = Path()
        p.add_polyline([(2.5, 2.5), (7.5, 2.5), (7.5, 7.5), (2.5, 7.5)], closed=True)
        coverage, _ = rasterize_fill(p, 20, 20)
        partial = ((coverage > 0.01) & (coverage < 0.99)).sum()
        assert partial > 0

    def test_fill_clipped_to_canvas(self):
        coverage, (ox, oy) = rasterize_fill(self.square(-5, -5, 8), 20, 20)
        assert ox == 0 and oy == 0
        assert coverage.shape[0] <= 5

    def test_fill_off_canvas_empty(self):
        coverage, _ = rasterize_fill(self.square(100, 100), 20, 20)
        assert coverage.size == 0

    def test_evenodd_ring(self):
        p = Path()
        p.add_polyline([(1, 1), (15, 1), (15, 15), (1, 15)], closed=True)
        p.add_polyline([(5, 5), (11, 5), (11, 11), (5, 11)], closed=True)
        coverage, (ox, oy) = rasterize_fill(p, 20, 20, rule="evenodd")
        assert coverage[8 - oy, 8 - ox] < 0.05   # hole
        assert coverage[3 - oy, 3 - ox] > 0.95   # ring

    def test_nonzero_same_winding_no_hole(self):
        p = Path()
        p.add_polyline([(1, 1), (15, 1), (15, 15), (1, 15)], closed=True)
        p.add_polyline([(5, 5), (11, 5), (11, 11), (5, 11)], closed=True)
        coverage, (ox, oy) = rasterize_fill(p, 20, 20, rule="nonzero")
        assert coverage[8 - oy, 8 - ox] > 0.95   # same direction: no hole

    def test_device_noise_only_on_edges(self):
        p = Path()
        p.add_polyline([(2.3, 2.3), (12.7, 2.3), (12.7, 12.7), (2.3, 12.7)], closed=True)
        clean, _ = rasterize_fill(p, 20, 20)
        noisy, _ = rasterize_fill(p, 20, 20, device=INTEL_UBUNTU)
        interior = (clean == 1.0)
        assert np.array_equal(clean[interior], noisy[interior])  # interior untouched
        assert not np.array_equal(clean, noisy)                  # edges perturbed

    def test_device_noise_deterministic(self):
        p = self.square()
        a, _ = rasterize_fill(p, 20, 20, device=INTEL_UBUNTU, noise_tag=7)
        b, _ = rasterize_fill(p, 20, 20, device=INTEL_UBUNTU, noise_tag=7)
        assert np.array_equal(a, b)

    def test_stroke_hollow(self):
        p = Path()
        p.add_polyline([(3, 3), (13, 3), (13, 13), (3, 13)], closed=True)
        coverage, (ox, oy) = rasterize_stroke(p, 20, 20, line_width=2.0)
        assert coverage[3 - oy, 8 - ox] > 0.5    # on the stroke
        assert coverage[8 - oy, 8 - ox] < 0.05   # interior empty

    def test_stroke_zero_width_empty(self):
        coverage, _ = rasterize_stroke(self.square(), 20, 20, line_width=0.0)
        assert coverage.size == 0

    def test_coverage_in_unit_range_always(self):
        p = Path()
        for k in range(5):  # overlapping polygons
            p.add_polyline([(k, k), (k + 8, k), (k + 8, k + 8), (k, k + 8)], closed=True)
        coverage, _ = rasterize_fill(p, 20, 20, device=INTEL_UBUNTU)
        assert coverage.min() >= 0.0 and coverage.max() <= 1.0


class TestTransform:
    def test_identity(self):
        t = Transform.identity()
        assert t.apply(3, 4) == (3, 4)
        assert t.is_identity

    def test_translate_then_scale_order(self):
        t = Transform().translate(10, 0).scale(2, 2)
        # Canvas semantics: scale applies in the translated frame.
        assert t.apply(1, 1) == (12, 2)

    def test_rotation_quarter_turn(self):
        t = Transform().rotate(math.pi / 2)
        x, y = t.apply(1, 0)
        assert x == pytest.approx(0, abs=1e-9)
        assert y == pytest.approx(1, abs=1e-9)

    def test_multiply_composition(self):
        a = Transform().translate(5, 0)
        b = Transform().scale(2, 2)
        assert a.multiply(b).apply(1, 1) == (7, 2)

    @given(
        x=st.floats(-100, 100),
        y=st.floats(-100, 100),
        tx=st.floats(-50, 50),
        ty=st.floats(-50, 50),
    )
    def test_translate_property(self, x, y, tx, ty):
        t = Transform().translate(tx, ty)
        px, py = t.apply(x, y)
        assert px == pytest.approx(x + tx)
        assert py == pytest.approx(y + ty)

    @given(angle=st.floats(0, 2 * math.pi))
    def test_rotation_preserves_distance(self, angle):
        t = Transform().rotate(angle)
        x, y = t.apply(3, 4)
        assert math.hypot(x, y) == pytest.approx(5.0, abs=1e-9)
