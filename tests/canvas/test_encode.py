"""Tests for PNG encoding/decoding and the lossy codecs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.canvas.encode import (
    PNGError,
    data_url,
    jpeg_like_encode,
    parse_data_url,
    png_decode,
    png_encode,
    webp_like_encode,
)


def random_pixels(h, w, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(h, w, 4), dtype=np.uint8)


class TestPNG:
    def test_roundtrip_exact(self):
        px = random_pixels(13, 29, seed=1)
        assert np.array_equal(png_decode(png_encode(px)), px)

    def test_roundtrip_1x1(self):
        px = np.array([[[1, 2, 3, 4]]], dtype=np.uint8)
        assert np.array_equal(png_decode(png_encode(px)), px)

    def test_signature(self):
        data = png_encode(random_pixels(2, 2))
        assert data.startswith(b"\x89PNG\r\n\x1a\n")

    def test_deterministic(self):
        px = random_pixels(8, 8, seed=2)
        assert png_encode(px) == png_encode(px)

    def test_different_pixels_different_bytes(self):
        a = random_pixels(8, 8, seed=3)
        b = a.copy()
        b[4, 4, 0] ^= 1  # single-bit pixel difference
        assert png_encode(a) != png_encode(b)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            png_encode(np.zeros((4, 4, 3), dtype=np.uint8))

    def test_decode_rejects_garbage(self):
        with pytest.raises(PNGError):
            png_decode(b"not a png")

    def test_decode_rejects_corrupt_crc(self):
        data = bytearray(png_encode(random_pixels(4, 4)))
        data[20] ^= 0xFF  # corrupt IHDR payload without fixing CRC
        with pytest.raises(PNGError):
            png_decode(bytes(data))

    def test_decode_filter_types(self):
        """The decoder handles Sub/Up/Average/Paeth rows, not just None."""
        import struct
        import zlib

        px = random_pixels(5, 4, seed=4)
        h, w = px.shape[:2]
        stride = w * 4
        flat = px.reshape(h, stride).astype(np.int32)
        raw = bytearray()
        for row in range(h):
            ftype = row % 5
            raw.append(ftype)
            line = flat[row]
            prev = flat[row - 1] if row > 0 else np.zeros(stride, dtype=np.int32)
            enc = np.zeros(stride, dtype=np.int32)
            for i in range(stride):
                left = line[i - 4] if i >= 4 else 0
                up = prev[i]
                ul = prev[i - 4] if i >= 4 else 0
                if ftype == 0:
                    pred = 0
                elif ftype == 1:
                    pred = left
                elif ftype == 2:
                    pred = up
                elif ftype == 3:
                    pred = (left + up) // 2
                else:
                    p = left + up - ul
                    pa, pb, pc = abs(p - left), abs(p - up), abs(p - ul)
                    pred = left if pa <= pb and pa <= pc else (up if pb <= pc else ul)
                enc[i] = (line[i] - pred) & 0xFF
            raw.extend(int(v) for v in enc)

        def chunk(tag, payload):
            return struct.pack(">I", len(payload)) + tag + payload + struct.pack(
                ">I", zlib.crc32(tag + payload) & 0xFFFFFFFF
            )

        ihdr = struct.pack(">IIBBBBB", w, h, 8, 6, 0, 0, 0)
        data = (
            b"\x89PNG\r\n\x1a\n"
            + chunk(b"IHDR", ihdr)
            + chunk(b"IDAT", zlib.compress(bytes(raw)))
            + chunk(b"IEND", b"")
        )
        assert np.array_equal(png_decode(data), px)


class TestLossy:
    def test_jpeg_destroys_subtle_differences(self):
        """The defining property: sub-pixel noise does not survive JPEG."""
        base = np.full((16, 16, 4), 200, dtype=np.uint8)
        base[..., 3] = 255
        noisy = base.copy()
        noisy[5, 5, 0] += 2  # AA-noise-sized difference
        assert jpeg_like_encode(base) == jpeg_like_encode(noisy)
        assert png_encode(base) != png_encode(noisy)

    def test_webp_destroys_subtle_differences(self):
        base = np.full((16, 16, 4), 100, dtype=np.uint8)
        base[..., 3] = 255
        noisy = base.copy()
        noisy[3, 3, 1] += 2
        assert webp_like_encode(base) == webp_like_encode(noisy)

    def test_quantized_planes_measure_information_loss(self):
        from repro.canvas.encode import lossy_quantized_planes

        base = np.full((32, 32, 4), 180, dtype=np.uint8)
        base[..., 3] = 255
        rng = np.random.default_rng(9)
        noisy = base.copy()
        # Scattered 1-2 unit perturbations, like device AA noise.
        mask = rng.random((32, 32)) < 0.2
        noisy[..., 0][mask] += rng.integers(1, 3, size=mask.sum()).astype(np.uint8)
        pa = lossy_quantized_planes(base, 0.5)
        pb = lossy_quantized_planes(noisy, 0.5)
        changed = (pa != pb).mean()
        assert changed < 0.02  # lossy path collapses nearly all of the noise

    def test_jpeg_preserves_gross_structure(self):
        black = np.zeros((16, 16, 4), dtype=np.uint8)
        black[..., 3] = 255
        white = np.full((16, 16, 4), 255, dtype=np.uint8)
        assert jpeg_like_encode(black) != jpeg_like_encode(white)

    def test_quality_changes_output(self):
        px = random_pixels(16, 16, seed=5)
        assert jpeg_like_encode(px, 0.9) != jpeg_like_encode(px, 0.1)

    def test_deterministic(self):
        px = random_pixels(10, 10, seed=6)
        assert jpeg_like_encode(px) == jpeg_like_encode(px)
        assert webp_like_encode(px) == webp_like_encode(px)

    def test_odd_dimensions(self):
        px = random_pixels(7, 9, seed=7)
        assert isinstance(jpeg_like_encode(px), bytes)


class TestDataURL:
    def test_roundtrip(self):
        mime, payload = parse_data_url(data_url("image/png", b"\x01\x02\x03"))
        assert mime == "image/png"
        assert payload == b"\x01\x02\x03"

    def test_format(self):
        url = data_url("image/jpeg", b"x")
        assert url.startswith("data:image/jpeg;base64,")

    def test_parse_rejects_non_data(self):
        with pytest.raises(ValueError):
            parse_data_url("https://example.com/x.png")


@settings(max_examples=25, deadline=None)
@given(
    h=st.integers(1, 24),
    w=st.integers(1, 24),
    seed=st.integers(0, 1000),
)
def test_png_roundtrip_property(h, w, seed):
    px = random_pixels(h, w, seed=seed)
    assert np.array_equal(png_decode(png_encode(px)), px)
