"""CLI entry-point tests (run in-process at tiny scale)."""

import pytest

from repro.config import PAPER, FULL_SCALE, StudyScale


class TestConfig:
    def test_prevalence_derivations(self):
        assert PAPER.top_prevalence == pytest.approx(0.127, abs=0.001)
        assert PAPER.tail_prevalence == pytest.approx(0.099, abs=0.001)

    def test_vendor_lookup(self):
        assert PAPER.vendor("Akamai").top == 485
        assert PAPER.vendor("Shopify").tail == 457
        with pytest.raises(KeyError):
            PAPER.vendor("NotAVendor")

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            StudyScale(fraction=0.0)
        with pytest.raises(ValueError):
            StudyScale(fraction=1.5)

    def test_scale_site_counts(self):
        assert FULL_SCALE.top_sites == 20_000
        assert StudyScale(fraction=0.05).top_sites == 1_000
        assert StudyScale(fraction=0.0001).top_sites >= 1

    def test_table1_has_13_vendors(self):
        assert len(PAPER.vendors) == 13
        assert sum(1 for v in PAPER.vendors if v.security) == 8


class TestExperimentsCLI:
    def test_main_runs_selected_experiments(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["--scale", "0.01", "--only", "prevalence", "table3", "--no-adblock"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Prevalence of canvas fingerprinting" in out
        assert "Table 3" in out
        assert "Paper vs measured" in out


class TestCrawlAnalyzeCLI:
    def test_crawl_then_analyze(self, tmp_path, capsys):
        from repro.analysis.__main__ import main as analyze_main
        from repro.crawler.__main__ import main as crawl_main

        out_path = tmp_path / "crawl.jsonl.gz"
        assert crawl_main(["--scale", "0.01", "--out", str(out_path)]) == 0
        assert out_path.exists()
        capsys.readouterr()

        assert analyze_main([str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "fingerprinting" in out
        assert "distinct test canvases" in out

    def test_crawl_with_adblock(self, tmp_path, capsys):
        from repro.crawler.__main__ import main as crawl_main

        out_path = tmp_path / "abp.jsonl.gz"
        assert crawl_main(["--scale", "0.005", "--adblock", "abp", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "crawled" in out

    def test_resume_over_finished_crawl(self, tmp_path, capsys):
        from repro.crawler.__main__ import main as crawl_main
        from repro.crawler.storage import load_dataset

        out_path = tmp_path / "crawl.jsonl.gz"
        assert crawl_main(["--scale", "0.005", "--out", str(out_path)]) == 0
        n = len(load_dataset(out_path).observations)
        capsys.readouterr()

        assert crawl_main(
            ["--scale", "0.005", "--out", str(out_path), "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert len(load_dataset(out_path).observations) == n  # not doubled
        assert "crawled" in out

    def test_crawl_with_fault_injection(self, tmp_path, capsys):
        from repro.crawler.__main__ import main as crawl_main
        from repro.crawler.storage import load_dataset

        out_path = tmp_path / "faulty.jsonl.gz"
        rc = crawl_main(
            ["--scale", "0.005", "--fault-rate", "0.2", "--max-attempts", "5",
             "--out", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "attempts" in out  # health summary printed
        dataset = load_dataset(out_path)
        assert any(o.attempts > 1 for o in dataset.observations)

    def test_crawl_on_m1_device(self, tmp_path, capsys):
        from repro.crawler.__main__ import main as crawl_main

        out_path = tmp_path / "m1.jsonl.gz"
        rc = crawl_main(
            ["--scale", "0.005", "--device", "apple-m1", "--out", str(out_path)]
        )
        assert rc == 0
        from repro.crawler.storage import load_dataset

        assert load_dataset(out_path).label == "apple-m1"


class TestSupervisedCrawlAnalyzeSmoke:
    """The CI smoke pipeline: a supervised parallel crawl persisted to gzip
    and streamed through ``python -m repro.analysis`` must report the same
    numbers as an in-process ``run_study`` over the same world.

    The crawler CLI defaults (``--max-attempts 3``, ``--page-budget-ms
    90000``) are mirrored explicitly on the ``run_study`` side; with no
    injected faults the retries never fire, so the two datasets — one
    crossing a process boundary per shard plus a gzip round-trip, one fully
    in-process — are observation-for-observation identical.
    """

    def test_supervised_parallel_crawl_matches_run_study(self, tmp_path, capsys):
        from repro.analysis.__main__ import main as analyze_main
        from repro.core.pipeline import run_study
        from repro.crawler.__main__ import main as crawl_main
        from repro.crawler.resilience import PageBudget, RetryPolicy
        from repro.webgen import build_world

        scale, seed = 0.01, 99
        out_path = tmp_path / "crawl.jsonl.gz"
        rc = crawl_main(
            ["--scale", str(scale), "--seed", str(seed), "--jobs", "4",
             "--supervised", "--out", str(out_path)]
        )
        assert rc == 0
        capsys.readouterr()
        assert analyze_main([str(out_path)]) == 0
        out = capsys.readouterr().out

        world = build_world(StudyScale(fraction=scale, seed=seed))
        study = run_study(
            world.network,
            world.all_targets,
            world.vendor_knowledge(),
            easylist_text=world.easylist_text,
            easyprivacy_text=world.easyprivacy_text,
            disconnect=world.disconnect,
            ubo_extra_text=world.ubo_extra_text,
            dns=world.network.dns,
            include_adblock_crawls=False,
            retry_policy=RetryPolicy(max_attempts=3),
            page_budget=PageBudget(max_page_ms=90_000.0),
        )
        assert f"({len(study.control.observations)} sites)" in out
        for pop in ("top", "tail"):
            p = study.prevalence.population(pop)
            if p.sites_crawled == 0:
                continue
            assert (
                f"{pop}: {p.sites_successful}/{p.sites_crawled} ok, "
                f"{p.fp_sites} fingerprinting ({p.prevalence:.1%})"
            ) in out
        assert f"distinct test canvases: {len(study.clusters)}" in out


class TestArtifactsFlag:
    def test_artifacts_written(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out = tmp_path / "artifacts"
        rc = main(
            ["--scale", "0.01", "--only", "prevalence", "figure1", "--no-adblock",
             "--artifacts", str(out)]
        )
        assert rc == 0
        assert (out / "prevalence.txt").exists()
        assert (out / "figure1.txt").exists()
        assert (out / "paper_vs_measured.txt").read_text().count("paper") > 10
        csv = (out / "figure1.csv").read_text().splitlines()
        assert csv[0] == "rank,top_sites,tail_sites"
        assert len(csv) > 1
        # The PNG is drawn by our own canvas substrate.
        from repro.canvas.encode import png_decode

        pixels = png_decode((out / "figure1.png").read_bytes())
        assert pixels.shape[2] == 4
