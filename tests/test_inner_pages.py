"""Inner-page (login) fingerprinting: the homepage-only lower bound.

The paper states its homepage-only crawl is a lower bound on prevalence
(§3.2 Limitations); the synthetic web plants login-page-only fingerprinting
so the size of that bound is measurable.
"""

import pytest

from repro.config import StudyScale
from repro.core import FingerprintDetector
from repro.crawler import run_crawl
from repro.webgen import build_world


@pytest.fixture(scope="module")
def world():
    return build_world(StudyScale(fraction=0.04, seed=2718))


def fp_sites(dataset):
    detector = FingerprintDetector()
    outcomes = detector.detect_all(dataset.successful())
    return {d for d, o in outcomes.items() if o.is_fingerprinting_site}


class TestLoginPages:
    def test_some_sites_have_login_only_fingerprinting(self, world):
        login_only = [
            p
            for p in world.plans.values()
            if p.failure is None and p.login_deployments and not p.deployments
        ]
        assert login_only, "generator must plant login-only fingerprinting"

    def test_login_pages_served(self, world):
        plan = next(
            p for p in world.plans.values() if p.failure is None and p.login_deployments
        )
        response = world.network.get(f"https://{plan.domain}/login")
        assert response.ok
        assert "<script" in response.body

    def test_sites_without_login_page_404(self, world):
        plan = next(
            p
            for p in world.plans.values()
            if p.failure is None and not p.login_deployments
        )
        assert world.network.get(f"https://{plan.domain}/login").status == 404

    def test_homepage_crawl_is_lower_bound(self, world):
        homepage = run_crawl(world.network, world.all_targets, label="homepage")
        with_inner = run_crawl(
            world.network, world.all_targets, label="inner", inner_paths=("/login",)
        )
        base = fp_sites(homepage)
        extended = fp_sites(with_inner)
        assert base <= extended
        assert len(extended) > len(base)  # the bound is strict

    def test_login_fingerprinters_are_security_vendors(self, world):
        vendors = {
            d.vendor
            for p in world.plans.values()
            for d in p.login_deployments
        }
        assert vendors <= {"PerimeterX", "Sift Science", "Signifyd", "AWS Firewall"}

    def test_inner_crawl_merges_observations(self, world):
        plan = next(
            p
            for p in world.plans.values()
            if p.failure is None and p.login_deployments and not p.deployments
        )
        dataset = run_crawl(
            world.network,
            [t for t in world.all_targets if t.domain == plan.domain],
            inner_paths=("/login",),
        )
        (obs,) = dataset.observations
        assert obs.success
        assert obs.extractions  # the login-page canvas landed in the record
