"""Smoke tests: every example script must run cleanly and print sane output."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    captured = io.StringIO()
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        with redirect_stdout(captured):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return captured.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "FINGERPRINTING" in out
        assert "clean" in out
        assert "lossy-format" in out

    def test_adblock_evasion(self):
        out = run_example("adblock_evasion.py")
        assert out.count("fingerprinted") >= 7      # all 4 control + 3 evasions
        assert "BLOCKED" in out                      # the honest third party
        assert "listed as script?   False" in out    # A.6 static check

    def test_canvas_randomization(self):
        out = run_example("canvas_randomization.py")
        assert "render-twice says 'stable'" in out
        assert "render-twice says 'UNSTABLE'" in out
        assert "fingerprints equal? False" in out

    def test_device_entropy(self):
        out = run_example("device_entropy.py", ["12"])
        assert "distinct PNG fingerprints:  12" in out
        assert "stable across repeated visits: True" in out

    @pytest.mark.slow
    def test_full_study_small(self):
        out = run_example("full_study.py", ["0.01"])
        assert "Table 1" in out
        assert "Paper vs measured" in out

    @pytest.mark.slow
    def test_vendor_attribution(self):
        out = run_example("vendor_attribution.py")
        assert "Ground-truth sources" in out
        assert "Vendor reach" in out
