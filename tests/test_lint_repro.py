"""Tests for tools/lint_repro.py, the worker-metrics-channel AST lint."""

import subprocess
import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

from lint_repro import lint_file, main  # noqa: E402


def _lint_source(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return lint_file(path, tmp_path)


class TestDetachedRegistry:
    def test_module_level_registry_is_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            "from repro.obs.metrics import MetricsRegistry\n"
            "MY_METRICS = MetricsRegistry()\n",
        )
        assert [f[2] for f in findings] == ["detached-registry"]
        assert findings[0][1] == 2

    def test_each_registry_class_is_flagged(self, tmp_path):
        for cls in ("PerfCounters", "MetricsRegistry", "SampleTable"):
            findings = _lint_source(tmp_path, f"X = {cls}()\n")
            assert [f[2] for f in findings] == ["detached-registry"], cls

    def test_function_local_registry_is_allowed(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            "def make():\n"
            "    return MetricsRegistry()\n",
        )
        assert findings == []

    def test_singleton_homes_are_allowed(self, tmp_path):
        home = tmp_path / "repro" / "obs"
        home.mkdir(parents=True)
        path = home / "__init__.py"
        path.write_text("METRICS = MetricsRegistry()\n")
        assert lint_file(path, tmp_path) == []

    def test_conditional_module_level_registry_is_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            "if True:\n"
            "    FALLBACK = PerfCounters()\n",
        )
        assert [f[2] for f in findings] == ["detached-registry"]


class TestDynamicCacheLayer:
    def test_literal_layer_is_allowed(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            "CACHE = perf.ByteBudgetLRU('render_cache', budget_attr='x')\n",
        )
        assert findings == []

    def test_computed_layer_is_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            "name = 'render'\n"
            "CACHE = perf.ByteBudgetLRU(name + '_cache', budget_attr='x')\n",
        )
        assert [f[2] for f in findings] == ["dynamic-cache-layer"]

    def test_keyword_layer_is_checked(self, tmp_path):
        good = _lint_source(
            tmp_path, "C = ByteBudgetLRU(layer='glyph', budget_attr='x')\n"
        )
        assert good == []
        bad = _lint_source(
            tmp_path, "C = ByteBudgetLRU(layer=f'{kind}', budget_attr='x')\n"
        )
        assert [f[2] for f in bad] == ["dynamic-cache-layer"]


class TestWorkerMissingPayload:
    GOOD = (
        "def _crawl_shard_worker(payload):\n"
        "    before = perf.PERF.snapshot()\n"
        "    metrics_before = obs.METRICS.snapshot()\n"
        "    records = crawl(payload)\n"
        "    delta = perf.diff_snapshots(before, perf.PERF.snapshot())\n"
        "    return records, delta, obs.worker_payload(metrics_before)\n"
    )

    def test_compliant_worker_is_allowed(self, tmp_path):
        assert _lint_source(tmp_path, self.GOOD) == []

    def test_worker_missing_both_calls_is_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            "def _rogue_shard_worker(payload):\n"
            "    return crawl(payload)\n",
        )
        assert [f[2] for f in findings] == ["worker-missing-payload"]
        assert "diff_snapshots" in findings[0][3]
        assert "worker_payload" in findings[0][3]

    def test_worker_missing_one_call_is_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            "def _half_shard_worker(payload):\n"
            "    delta = perf.diff_snapshots(a, b)\n"
            "    return delta\n",
        )
        assert [f[2] for f in findings] == ["worker-missing-payload"]
        assert "worker_payload" in findings[0][3]
        assert "diff_snapshots" not in findings[0][3]

    def test_public_helpers_named_worker_are_not_entry_points(self, tmp_path):
        # obs.ingest_worker is the parent-side fold, not a dispatch target.
        findings = _lint_source(
            tmp_path,
            "def ingest_worker(payload):\n"
            "    return payload\n",
        )
        assert findings == []


class TestCLI:
    def test_src_repro_is_clean(self):
        # The gate CI runs: the real tree must satisfy its own lint.
        assert main([]) == 0

    def test_exit_one_and_report_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("REGISTRY = MetricsRegistry()\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "detached-registry" in out
        assert "bad.py:1" in out

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def (:\n")
        findings = lint_file(path, tmp_path)
        assert [f[2] for f in findings] == ["syntax-error"]

    def test_runs_as_a_script(self):
        proc = subprocess.run(
            [sys.executable, str(TOOLS / "lint_repro.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stderr
