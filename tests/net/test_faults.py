"""Tests for deterministic transient-fault injection (repro.net.faults)."""

import pytest

from repro.net.faults import FaultConfig, FaultInjector, FaultyNetwork
from repro.net.http import Request, ResourceType
from repro.net.server import Network
from repro.net.url import URL


def make_network():
    net = Network()
    for host in ("a.example", "b.example"):
        server = net.server_for(host)
        server.add_resource("/", f"<html><title>{host}</title></html>")
        server.add_script("/app.js", "var x = 1;")
    return net


def doc_request(url):
    return Request(url=URL.parse(url), resource_type=ResourceType.DOCUMENT)


def script_request(url):
    return Request(url=URL.parse(url), resource_type=ResourceType.SCRIPT)


def only(kind_weight_name, **extra):
    """A config afflicting every URL with exactly one fault kind."""
    weights = {
        "connection_error_weight": 0.0,
        "http_flap_weight": 0.0,
        "slow_response_weight": 0.0,
        "truncated_script_weight": 0.0,
    }
    weights[kind_weight_name] = 1.0
    return FaultConfig(fault_rate=1.0, **weights, **extra)


URLS = [f"https://site-{i}.example/" for i in range(300)]


class TestFaultInjector:
    def test_schedule_is_deterministic_per_seed(self):
        config = FaultConfig(fault_rate=0.3)
        a = FaultInjector(config, seed=7)
        b = FaultInjector(config, seed=7)
        schedules_a = [a.schedule_for(u, ResourceType.DOCUMENT) for u in URLS]
        schedules_b = [b.schedule_for(u, ResourceType.DOCUMENT) for u in URLS]
        assert schedules_a == schedules_b
        assert any(s is not None for s in schedules_a)

    def test_schedule_differs_across_seeds(self):
        config = FaultConfig(fault_rate=0.3)
        a = FaultInjector(config, seed=1)
        b = FaultInjector(config, seed=2)
        assert [a.schedule_for(u, ResourceType.DOCUMENT) for u in URLS] != [
            b.schedule_for(u, ResourceType.DOCUMENT) for u in URLS
        ]

    def test_schedule_independent_of_query_order(self):
        injector = FaultInjector(FaultConfig(fault_rate=0.5), seed=3)
        forward = [injector.schedule_for(u, ResourceType.DOCUMENT) for u in URLS]
        backward = [injector.schedule_for(u, ResourceType.DOCUMENT) for u in reversed(URLS)]
        assert forward == list(reversed(backward))

    def test_fault_rate_zero_never_afflicts(self):
        injector = FaultInjector(FaultConfig(fault_rate=0.0), seed=5)
        assert all(injector.schedule_for(u, ResourceType.DOCUMENT) is None for u in URLS)

    def test_fault_clears_after_max_consecutive(self):
        injector = FaultInjector(only("connection_error_weight", max_consecutive=2), seed=1)
        url = "https://a.example/"
        kinds = [injector.next_fault(url, ResourceType.DOCUMENT) for _ in range(5)]
        n_faults = sum(1 for k in kinds if k is not None)
        assert 1 <= n_faults <= 2
        # Once cleared, the fault stays cleared.
        assert all(k is None for k in kinds[n_faults:])
        assert injector.total_injected() == n_faults

    def test_truncation_never_applies_to_documents(self):
        injector = FaultInjector(only("truncated_script_weight"), seed=1)
        assert all(injector.schedule_for(u, ResourceType.DOCUMENT) is None for u in URLS)
        assert any(injector.schedule_for(u, ResourceType.SCRIPT) is not None for u in URLS)


class TestFaultyNetwork:
    def test_connection_error_then_recovery(self):
        net = FaultyNetwork(make_network(), only("connection_error_weight", max_consecutive=1), seed=1)
        first = net.fetch(doc_request("https://a.example/"))
        second = net.fetch(doc_request("https://a.example/"))
        assert first.status == 0
        assert second.status == 200 and "a.example" in second.body

    def test_http_flap_then_recovery(self):
        net = FaultyNetwork(make_network(), only("http_flap_weight", max_consecutive=1), seed=1)
        first = net.fetch(doc_request("https://a.example/"))
        assert first.status == 503
        assert net.fetch(doc_request("https://a.example/")).status == 200

    def test_slow_response_sets_latency(self):
        config = only("slow_response_weight", max_consecutive=1, slow_ms=120_000.0)
        net = FaultyNetwork(make_network(), config, seed=1)
        first = net.fetch(doc_request("https://a.example/"))
        assert first.status == 200 and first.latency_ms == 120_000.0
        assert net.fetch(doc_request("https://a.example/")).latency_ms == 0.0

    def test_truncated_script_body_with_content_length(self):
        net = FaultyNetwork(make_network(), only("truncated_script_weight", max_consecutive=1), seed=1)
        first = net.fetch(script_request("https://a.example/app.js"))
        assert int(first.headers["content-length"]) > len(first.body)
        second = net.fetch(script_request("https://a.example/app.js"))
        assert second.body == "var x = 1;"

    def test_unafflicted_urls_pass_through(self):
        inner = make_network()
        net = FaultyNetwork(inner, FaultConfig(fault_rate=0.0), seed=1)
        response = net.fetch(doc_request("https://b.example/"))
        assert response.status == 200
        assert inner.requests_served == 1

    def test_delegates_everything_else(self):
        inner = make_network()
        net = FaultyNetwork(inner, FaultConfig(fault_rate=1.0), seed=1)
        assert net.dns is inner.dns
        assert net.has_host("a.example")
        net.server_for("c.example").add_resource("/", "<html></html>")
        assert inner.has_host("c.example")

    def test_pickle_roundtrip(self):
        # Shard workers receive the network via multiprocessing pickling;
        # __getattr__ delegation must not recurse while __dict__ is empty.
        import pickle

        net = FaultyNetwork(make_network(), FaultConfig(fault_rate=1.0), seed=7)
        clone = pickle.loads(pickle.dumps(net))
        assert clone.has_host("a.example")
        assert clone.injector.config.fault_rate == 1.0

    def test_missing_attribute_raises_attribute_error(self):
        net = FaultyNetwork(make_network(), FaultConfig(), seed=1)
        with pytest.raises(AttributeError):
            net.does_not_exist


class TestProcessFaults:
    """Process-level poison-site faults (worker-crash / worker-hang).

    The actual ``os._exit`` / ``time.sleep`` side effects are exercised by
    the supervisor chaos tests in ``tests/crawler/test_supervisor.py`` (they
    must happen in a sacrificial subprocess); here we pin the *scheduling*
    contract those tests rely on.
    """

    def test_process_fault_is_pure_config_lookup(self):
        from repro.net.faults import FaultKind

        config = FaultConfig(
            worker_crash_domains=("poison.example",),
            worker_hang_domains=("tarpit.example",),
        )
        injector = FaultInjector(config, seed=1)
        assert injector.process_fault("poison.example") == FaultKind.WORKER_CRASH
        assert injector.process_fault("tarpit.example") == FaultKind.WORKER_HANG
        assert injector.process_fault("clean.example") is None

    def test_process_fault_is_deterministic_across_seeds(self):
        """Unlike transient faults, poison is seed-independent: a respawned
        worker (any seed, any draw order) must die on the same site, or the
        supervisor's bisection cannot converge."""
        config = FaultConfig(worker_crash_domains=("poison.example",))
        for seed in (0, 1, 12345):
            from repro.net.faults import FaultKind

            injector = FaultInjector(config, seed=seed)
            for _ in range(3):
                assert injector.process_fault("poison.example") == FaultKind.WORKER_CRASH

    def test_process_faults_never_enter_transient_mix(self):
        config = FaultConfig(fault_rate=1.0, worker_crash_domains=("a.example",))
        injector = FaultInjector(config, seed=3)
        for url in URLS:
            schedule = injector.schedule_for(url, ResourceType.SCRIPT)
            if schedule is not None:
                from repro.net.faults import FaultKind

                assert schedule.kind not in FaultKind.PROCESS

    def test_non_document_fetches_never_trigger_process_faults(self):
        """Only the top-level document visit models 'visiting the site'."""
        net = FaultyNetwork(
            make_network(), FaultConfig(worker_crash_domains=("a.example",))
        )
        # A script fetch from the poison host must come back, not kill us.
        response = net.fetch(script_request("https://a.example/app.js"))
        assert response.status == 200

    def test_document_fetch_on_clean_host_passes_through(self):
        net = FaultyNetwork(
            make_network(), FaultConfig(worker_crash_domains=("poison.example",))
        )
        response = net.fetch(doc_request("https://a.example/"))
        assert response.status == 200
        assert net.injector.total_injected() == 0


class TestConfigValidation:
    def test_zero_weights_disable_faults(self):
        config = FaultConfig(
            fault_rate=1.0,
            connection_error_weight=0.0,
            http_flap_weight=0.0,
            slow_response_weight=0.0,
            truncated_script_weight=0.0,
        )
        injector = FaultInjector(config, seed=1)
        assert injector.schedule_for("https://a.example/", ResourceType.SCRIPT) is None

    def test_weight_for_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            FaultConfig().weight_for("meteor-strike")
