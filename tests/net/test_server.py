"""Tests for repro.net.server and repro.net.http."""

import pytest

from repro.net.http import Request, ResourceType, Response
from repro.net.server import Network, OriginServer
from repro.net.url import URL


@pytest.fixture
def net():
    n = Network()
    site = n.server_for("example.com")
    site.add_resource("/", "<html>home</html>")
    site.add_script("/app.js", "var x = 1;")
    return n


class TestOriginServer:
    def test_serves_registered_path(self, net):
        resp = net.get("https://example.com/")
        assert resp.ok
        assert resp.body == "<html>home</html>"
        assert resp.content_type == "text/html"
        assert resp.served_by == "example.com"

    def test_script_content_type(self, net):
        resp = net.get("https://example.com/app.js")
        assert resp.content_type == "application/javascript"

    def test_404_for_unknown_path(self, net):
        resp = net.get("https://example.com/missing")
        assert resp.status == 404
        assert not resp.ok

    def test_rejects_relative_path(self):
        with pytest.raises(ValueError):
            OriginServer("a.com").add_resource("x", "body")


class TestNetwork:
    def test_nxdomain_gives_network_error(self, net):
        resp = net.get("https://unknown.example/")
        assert resp.status == 0

    def test_server_for_idempotent(self, net):
        assert net.server_for("example.com") is net.server_for("EXAMPLE.com")

    def test_cname_routes_to_canonical_server(self, net):
        net.alias("metrics.example.org", "example.com")
        resp = net.get("https://metrics.example.org/app.js")
        assert resp.ok
        assert resp.body == "var x = 1;"
        assert resp.served_by == "example.com"
        # The URL the browser sees is still the cloaked one.
        assert resp.url.host == "metrics.example.org"

    def test_request_counters(self, net):
        before = net.requests_served
        net.get("https://example.com/")
        net.get("https://example.com/missing")
        assert net.requests_served == before + 1
        assert net.requests_failed >= 1


class TestRequestContext:
    def test_third_party_detection(self):
        doc = URL.parse("https://shop.example.com/")
        req = Request(URL.parse("https://vendor.net/fp.js"), ResourceType.SCRIPT, document_url=doc)
        assert req.third_party

    def test_subdomain_is_first_party(self):
        doc = URL.parse("https://example.com/")
        req = Request(URL.parse("https://fp.example.com/fp.js"), ResourceType.SCRIPT, document_url=doc)
        assert not req.third_party

    def test_no_document_is_first_party(self):
        req = Request(URL.parse("https://vendor.net/fp.js"))
        assert not req.third_party


class TestResponseHelpers:
    def test_blocked_response(self):
        r = Response.blocked(URL.parse("https://a.com/x.js"))
        assert r.status == 0 and not r.ok

    def test_not_found(self):
        r = Response.not_found(URL.parse("https://a.com/x"))
        assert r.status == 404
