"""Tests for repro.net.dns: resolution, CNAME chains, cloaking detection."""

import pytest
from hypothesis import given, strategies as st

from repro.net.dns import DNSError, DNSRecord, DNSZone, RecordType


@pytest.fixture
def zone():
    z = DNSZone()
    z.add_a("vendor.com", "203.0.113.1")
    z.add_a("customer.com", "203.0.113.2")
    z.add_cname("metrics.customer.com", "collector.vendor.com")
    z.add_a("collector.vendor.com", "203.0.113.3")
    return z


class TestResolve:
    def test_a_record(self, zone):
        canonical, chain = zone.resolve("vendor.com")
        assert canonical == "vendor.com"
        assert chain == ["vendor.com"]

    def test_cname_chain(self, zone):
        canonical, chain = zone.resolve("metrics.customer.com")
        assert canonical == "collector.vendor.com"
        assert chain == ["metrics.customer.com", "collector.vendor.com"]

    def test_nxdomain(self, zone):
        with pytest.raises(DNSError):
            zone.resolve("nope.example")

    def test_case_insensitive(self, zone):
        canonical, _ = zone.resolve("VENDOR.com")
        assert canonical == "vendor.com"

    def test_chain_of_cnames(self):
        z = DNSZone()
        z.add_cname("a.com", "b.com")
        z.add_cname("b.com", "c.com")
        z.add_a("c.com", "203.0.113.9")
        canonical, chain = z.resolve("a.com")
        assert canonical == "c.com"
        assert chain == ["a.com", "b.com", "c.com"]

    def test_loop_detected(self):
        z = DNSZone()
        z.add_cname("a.com", "b.com")
        z.add_cname("b.com", "a.com")
        with pytest.raises(DNSError):
            z.resolve("a.com")

    def test_self_cname_rejected(self):
        z = DNSZone()
        with pytest.raises(ValueError):
            z.add_cname("a.com", "a.com")

    def test_dangling_cname(self):
        z = DNSZone()
        z.add_cname("a.com", "gone.com")
        with pytest.raises(DNSError):
            z.resolve("a.com")

    def test_too_long_chain(self):
        z = DNSZone()
        names = [f"h{i}.com" for i in range(DNSZone.MAX_CHAIN + 2)]
        for a, b in zip(names, names[1:]):
            z.add_cname(a, b)
        z.add_a(names[-1], "203.0.113.4")
        with pytest.raises(DNSError):
            z.resolve(names[0])


class TestCloaking:
    def test_cloaked_subdomain(self, zone):
        assert zone.is_cloaked("metrics.customer.com")

    def test_plain_host_not_cloaked(self, zone):
        assert not zone.is_cloaked("vendor.com")

    def test_same_site_cname_not_cloaked(self):
        z = DNSZone()
        z.add_cname("www.example.com", "example.com")
        z.add_a("example.com", "203.0.113.5")
        assert not z.is_cloaked("www.example.com")

    def test_unknown_name_not_cloaked(self, zone):
        assert not zone.is_cloaked("missing.example")


class TestZoneBasics:
    def test_contains_and_len(self, zone):
        assert "vendor.com" in zone
        assert "missing.example" not in zone
        assert len(zone) == 4

    def test_lookup_returns_record(self, zone):
        rec = zone.lookup("metrics.customer.com")
        assert rec == DNSRecord("metrics.customer.com", RecordType.CNAME, "collector.vendor.com")


_host = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=6),
    min_size=2,
    max_size=4,
).map(".".join)


@given(hosts=st.lists(_host, min_size=1, max_size=20, unique=True))
def test_a_records_resolve_to_themselves(hosts):
    z = DNSZone()
    for h in hosts:
        z.add_a(h, "203.0.113.7")
    for h in hosts:
        canonical, chain = z.resolve(h)
        assert canonical == h
        assert chain == [h]
