"""Unit and property tests for repro.net.url."""

import pytest
from hypothesis import given, strategies as st

from repro.net.url import URL, URLError, origin_of, registrable_domain, same_site


class TestParse:
    def test_simple(self):
        u = URL.parse("https://example.com/")
        assert u.scheme == "https"
        assert u.host == "example.com"
        assert u.path == "/"
        assert u.query == ""
        assert u.fragment == ""
        assert u.port is None

    def test_full(self):
        u = URL.parse("http://cdn.example.co.uk:8080/a/b.js?v=2#frag")
        assert u.host == "cdn.example.co.uk"
        assert u.port == 8080
        assert u.path == "/a/b.js"
        assert u.query == "v=2"
        assert u.fragment == "frag"

    def test_bare_authority_gets_root_path(self):
        assert URL.parse("https://example.com").path == "/"

    def test_host_lowercased(self):
        assert URL.parse("https://ExAmPlE.COM/").host == "example.com"

    def test_query_before_fragment(self):
        u = URL.parse("https://a.com/p?x=1#y?z=2")
        assert u.query == "x=1"
        assert u.fragment == "y?z=2"

    @pytest.mark.parametrize(
        "bad",
        [
            "example.com/path",       # no scheme
            "ftp://example.com/",     # unsupported scheme
            "https:/example.com/",    # missing authority
            "https://",               # empty host
            "https://exa mple.com/",  # space in host
            "https://a.com:notaport/",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(URLError):
            URL.parse(bad)

    def test_constructor_validates_path(self):
        with pytest.raises(URLError):
            URL("https", "a.com", path="relative")

    def test_constructor_validates_port_range(self):
        with pytest.raises(URLError):
            URL("https", "a.com", port=70000)


class TestSerialize:
    def test_roundtrip_simple(self):
        text = "https://sub.example.com/x/y?q=1#f"
        assert str(URL.parse(text)) == text

    def test_default_port_omitted(self):
        assert str(URL.parse("https://a.com:443/")) == "https://a.com/"
        assert str(URL.parse("http://a.com:80/")) == "http://a.com/"

    def test_nondefault_port_kept(self):
        assert str(URL.parse("https://a.com:8443/")) == "https://a.com:8443/"


class TestJoin:
    def test_absolute_ref(self):
        base = URL.parse("https://a.com/x/")
        assert str(base.join("https://b.com/y")) == "https://b.com/y"

    def test_scheme_relative(self):
        base = URL.parse("https://a.com/x/")
        assert str(base.join("//b.com/y")) == "https://b.com/y"

    def test_root_relative(self):
        base = URL.parse("https://a.com/x/page")
        assert str(base.join("/y.js")) == "https://a.com/y.js"

    def test_path_relative(self):
        base = URL.parse("https://a.com/x/page")
        assert str(base.join("y.js")) == "https://a.com/x/y.js"


class TestRegistrableDomain:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("example.com", "example.com"),
            ("www.example.com", "example.com"),
            ("a.b.c.example.com", "example.com"),
            ("example.co.uk", "example.co.uk"),
            ("www.example.co.uk", "example.co.uk"),
            ("betus.com.pa", "betus.com.pa"),
            ("shop.betus.com.pa", "betus.com.pa"),
            ("d111.cloudfront.net", "d111.cloudfront.net"),
            ("assets.d111.cloudfront.net", "d111.cloudfront.net"),
            ("localhost", "localhost"),
            ("com", "com"),
        ],
    )
    def test_cases(self, host, expected):
        assert registrable_domain(host) == expected

    def test_case_insensitive(self):
        assert registrable_domain("WWW.Example.COM") == "example.com"


class TestSiteIdentity:
    def test_same_site_subdomain(self):
        assert same_site("https://a.example.com/", "https://b.example.com/x")

    def test_cross_site(self):
        assert not same_site("https://example.com/", "https://example.org/")

    def test_origin_of(self):
        assert origin_of("https://a.com/x?q") == "https://a.com"

    def test_site_property(self):
        assert URL.parse("https://cdn.shop.example.co.uk/a").site == "example.co.uk"


# --- property tests ------------------------------------------------------------

_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8)
_host = st.lists(_label, min_size=2, max_size=5).map(".".join)
_path_seg = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789._-", min_size=1, max_size=8)
_path = st.lists(_path_seg, min_size=0, max_size=4).map(lambda segs: "/" + "/".join(segs))


@given(scheme=st.sampled_from(["http", "https"]), host=_host, path=_path)
def test_parse_serialize_roundtrip(scheme, host, path):
    url = URL(scheme=scheme, host=host, path=path)
    assert URL.parse(str(url)) == url


@given(host=_host)
def test_registrable_domain_is_suffix_and_idempotent(host):
    rd = registrable_domain(host)
    assert host == rd or host.endswith("." + rd)
    assert registrable_domain(rd) == rd


@given(host=_host, sub=_label)
def test_subdomain_same_site(host, sub):
    a = URL("https", host)
    b = URL("https", f"{sub}.{host}")
    # Adding one label never changes the registrable domain unless the host
    # itself is a public suffix (excluded by construction here: >=2 labels of
    # random letters are never in our PSL subset, but a 2-label host may be).
    from repro.net.url import PUBLIC_SUFFIXES

    if host not in PUBLIC_SUFFIXES and registrable_domain(host) == host or len(host.split(".")) > 2:
        assert same_site(a, b) == (registrable_domain(f"{sub}.{host}") == registrable_domain(host))
