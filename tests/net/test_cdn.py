"""Tests for the popular-CDN list (Appendix A.5)."""

import pytest

from repro.net.cdn import POPULAR_CDN_DOMAINS, is_cdn_host, is_cdn_url
from repro.net.url import URL


class TestCDNList:
    def test_paper_list_verbatim(self):
        # A.5's twelve entries, exactly.
        assert len(POPULAR_CDN_DOMAINS) == 12
        for domain in (
            "cloudflare.com",
            "cloudfront.net",
            "fastly.net",
            "gstatic.com",
            "googleusercontent.com",
            "googleapis.com",
            "akamai.net",
            "azureedge.net",
            "b-cdn.net",
            "bootstrapcdn.com",
            "cdn.jsdelivr.net",
            "cdnjs.cloudflare.com",
        ):
            assert domain in POPULAR_CDN_DOMAINS

    @pytest.mark.parametrize(
        "host,expected",
        [
            ("cloudflare.com", True),
            ("cdnjs.cloudflare.com", True),
            ("d1234.cloudfront.net", True),
            ("cdn.jsdelivr.net", True),
            ("assets.fastly.net", True),
            ("example.com", False),
            ("notcloudflare.com", False),
            ("cloudflare.com.evil.net", False),
            ("jsdelivr.net", False),  # only the cdn. subdomain is listed
        ],
    )
    def test_is_cdn_host(self, host, expected):
        assert is_cdn_host(host) == expected

    def test_is_cdn_url_with_objects_and_strings(self):
        assert is_cdn_url("https://ajax.googleapis.com/libs/fp.js")
        assert is_cdn_url(URL.parse("https://x.b-cdn.net/fp.js"))
        assert not is_cdn_url("https://selfhosted.example/fp.js")

    def test_case_insensitive(self):
        assert is_cdn_host("CDN.JSDELIVR.NET")
