"""Property tests: the observation schema round-trips through JSON exactly."""

from hypothesis import given, strategies as st

from repro.core.records import (
    CanvasApiCall,
    CanvasExtraction,
    PropertyAccess,
    SiteObservation,
)

_text = st.text(max_size=30)
_url = st.one_of(st.none(), st.sampled_from([
    "https://vendor.net/fp.js",
    "https://site.example/#inline",
    "https://cdn.jsdelivr.net/npm/fp@1/fp.min.js",
]))
_scalar = st.one_of(st.none(), st.booleans(), st.integers(-1000, 1000), _text)

_calls = st.builds(
    CanvasApiCall,
    interface=st.sampled_from(["CanvasRenderingContext2D", "HTMLCanvasElement"]),
    method=st.sampled_from(["fillRect", "fillText", "toDataURL", "save", "getContext"]),
    args=st.tuples(_scalar, _scalar),
    retval=st.one_of(st.none(), _text),
    script_url=_url,
    canvas_id=st.integers(1, 50),
    t_ms=st.floats(0, 1e6, allow_nan=False).map(lambda x: round(x, 3)),
)

_props = st.builds(
    PropertyAccess,
    interface=st.just("CanvasRenderingContext2D"),
    prop=st.sampled_from(["fillStyle", "font", "textBaseline", "width"]),
    value=_scalar,
    script_url=_url,
    canvas_id=st.integers(1, 50),
    t_ms=st.floats(0, 1e6, allow_nan=False).map(lambda x: round(x, 3)),
)

_extractions = st.builds(
    CanvasExtraction,
    data_url=st.text(alphabet="abcdefABCDEF0123456789+/=", min_size=1, max_size=60).map(
        lambda s: "data:image/png;base64," + s
    ),
    mime=st.sampled_from(["image/png", "image/jpeg", "image/webp"]),
    width=st.integers(1, 500),
    height=st.integers(1, 500),
    script_url=_url,
    canvas_id=st.integers(1, 50),
    t_ms=st.floats(0, 1e6, allow_nan=False).map(lambda x: round(x, 3)),
    method=st.just("toDataURL"),
)

_observations = st.builds(
    SiteObservation,
    domain=st.from_regex(r"[a-z]{3,10}\.(com|net|ru)", fullmatch=True),
    rank=st.integers(1, 1_000_000),
    population=st.sampled_from(["top", "tail"]),
    success=st.booleans(),
    failure_reason=st.one_of(st.none(), st.sampled_from(["bot-blocked", "network-error"])),
    final_url=st.one_of(st.none(), st.just("https://x.example/")),
    calls=st.lists(_calls, max_size=5),
    property_accesses=st.lists(_props, max_size=5),
    extractions=st.lists(_extractions, max_size=5),
    blocked_urls=st.lists(st.just("https://blocked.example/x.js"), max_size=2),
    script_errors=st.lists(_text, max_size=2),
    script_sources=st.dictionaries(st.sampled_from(["https://a/x.js", "https://b/y.js"]), _text, max_size=2),
)


@given(_observations)
def test_observation_json_roundtrip(observation):
    restored = SiteObservation.from_json(observation.to_json())
    assert restored == observation


@given(_extractions)
def test_extraction_hash_stable_under_roundtrip(extraction):
    restored = CanvasExtraction.from_json(extraction.to_json())
    assert restored.canvas_hash == extraction.canvas_hash
    assert restored.is_lossless == (extraction.mime == "image/png")


@given(_observations)
def test_observation_roundtrip_through_storage(observation):
    import json

    # A second serialization pass must be byte-identical (canonical form).
    once = json.dumps(observation.to_json(), sort_keys=True)
    twice = json.dumps(SiteObservation.from_json(observation.to_json()).to_json(), sort_keys=True)
    assert once == twice
