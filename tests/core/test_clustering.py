"""Tests for canvas clustering (§4.2)."""

from hypothesis import given, strategies as st

from repro.core.clustering import cluster_canvases, rank_clusters
from repro.core.detection import DetectionOutcome
from repro.core.records import CanvasExtraction


def extraction(data, script="https://v.com/fp.js"):
    return CanvasExtraction(
        data_url=data, mime="image/png", width=200, height=50, script_url=script, canvas_id=1, t_ms=1.0
    )


def outcome(domain, *data_urls):
    o = DetectionOutcome(domain=domain)
    o.fingerprintable.extend(extraction(d) for d in data_urls)
    return o


class TestClustering:
    def test_identical_canvases_group(self):
        outcomes = {
            "a.com": outcome("a.com", "data:AAA"),
            "b.com": outcome("b.com", "data:AAA"),
            "c.com": outcome("c.com", "data:BBB"),
        }
        pops = {"a.com": "top", "b.com": "top", "c.com": "tail"}
        clusters = cluster_canvases(outcomes, pops)
        assert len(clusters) == 2
        sizes = sorted(c.site_count() for c in clusters.values())
        assert sizes == [1, 2]

    def test_populations_tracked_separately(self):
        outcomes = {
            "a.com": outcome("a.com", "data:X"),
            "b.com": outcome("b.com", "data:X"),
        }
        pops = {"a.com": "top", "b.com": "tail"}
        clusters = cluster_canvases(outcomes, pops)
        (cluster,) = clusters.values()
        assert cluster.site_count("top") == 1
        assert cluster.site_count("tail") == 1
        assert cluster.site_count() == 2

    def test_double_extraction_counts_once_per_site(self):
        outcomes = {"a.com": outcome("a.com", "data:X", "data:X")}
        clusters = cluster_canvases(outcomes, {"a.com": "top"})
        (cluster,) = clusters.values()
        assert cluster.site_count() == 1
        assert cluster.extraction_count == 2
        assert cluster.extractions_per_site["a.com"] == 2

    def test_script_urls_accumulated(self):
        o1 = DetectionOutcome(domain="a.com")
        o1.fingerprintable.append(extraction("data:X", script="https://v.com/fp.js"))
        o2 = DetectionOutcome(domain="b.com")
        o2.fingerprintable.append(extraction("data:X", script="https://b.com/bundle.js"))
        clusters = cluster_canvases({"a.com": o1, "b.com": o2}, {"a.com": "top", "b.com": "top"})
        (cluster,) = clusters.values()
        assert cluster.script_urls == {"https://v.com/fp.js", "https://b.com/bundle.js"}

    def test_empty(self):
        assert cluster_canvases({}, {}) == {}


class TestRanking:
    def test_rank_by_top_popularity(self):
        outcomes = {}
        pops = {}
        for i in range(5):
            d = f"s{i}.com"
            outcomes[d] = outcome(d, "data:POPULAR")
            pops[d] = "top"
        outcomes["t.com"] = outcome("t.com", "data:RARE")
        pops["t.com"] = "top"
        clusters = cluster_canvases(outcomes, pops)
        ranked = rank_clusters(clusters, "top")
        assert ranked[0].site_count("top") == 5
        assert ranked[1].site_count("top") == 1

    def test_rank_deterministic_on_ties(self):
        outcomes = {
            "a.com": outcome("a.com", "data:X"),
            "b.com": outcome("b.com", "data:Y"),
        }
        pops = {"a.com": "top", "b.com": "top"}
        r1 = [c.canvas_hash for c in rank_clusters(cluster_canvases(outcomes, pops), "top")]
        r2 = [c.canvas_hash for c in rank_clusters(cluster_canvases(outcomes, pops), "top")]
        assert r1 == r2


@given(
    assignments=st.lists(
        st.tuples(st.sampled_from(["c1", "c2", "c3", "c4"]), st.sampled_from(["top", "tail"])),
        min_size=1,
        max_size=30,
    )
)
def test_cluster_partition_invariants(assignments):
    """Clusters partition extractions; site counts never exceed site totals."""
    outcomes = {}
    pops = {}
    for i, (canvas, pop) in enumerate(assignments):
        domain = f"site{i}.com"
        outcomes[domain] = outcome(domain, f"data:{canvas}")
        pops[domain] = pop
    clusters = cluster_canvases(outcomes, pops)
    # Every extraction accounted for exactly once.
    assert sum(c.extraction_count for c in clusters.values()) == len(assignments)
    # Union of cluster sites == all sites.
    all_sites = set()
    for c in clusters.values():
        all_sites |= c.all_sites()
    assert all_sites == set(outcomes)
    # Distinct canvases <= 4 by construction.
    assert len(clusters) <= 4
