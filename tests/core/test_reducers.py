"""Streaming reducers == batch analyses, on real crawled data.

The hard invariant of the streaming engine: folding a dataset through
sharded reducer partials and merging them must produce *exactly* the same
report objects as the batch entry points — which are themselves thin
drivers over a single reducer, so these tests pin both that the merge
algebra is faithful and that the two drivers stay one code path.
"""

import pytest

from repro.blocklists.matcher import RuleMatcher
from repro.config import StudyScale
from repro.core.attribution import VendorAttributor, VendorSignature
from repro.core.clustering import cluster_canvases
from repro.core.context import analyze_blocklist_context
from repro.core.detection import FingerprintDetector
from repro.core.evasion import analyze_serving_context, render_twice_fraction
from repro.core.fpjs import fpjs_breakdown
from repro.core.prevalence import compute_prevalence
from repro.core.reach import compute_reach
from repro.core.reducers import (
    AnalysisFold,
    AttributionReducer,
    BlocklistContextReducer,
    BundleSpec,
    FpjsReducer,
    ServingContextReducer,
)
from repro.crawler.crawl import run_crawl
from repro.webgen import build_world


@pytest.fixture(scope="module")
def world():
    return build_world(StudyScale(fraction=0.02, seed=4242))


@pytest.fixture(scope="module")
def dataset(world):
    return run_crawl(world.network, world.all_targets, label="control")


@pytest.fixture(scope="module")
def outcomes(dataset):
    return FingerprintDetector().detect_all(dataset.successful())


def shard_bundles(dataset, spec, shards=3):
    """Fold the dataset's observations round-robin into disjoint partials."""
    partials = [spec.build() for _ in range(shards)]
    for index, observation in enumerate(dataset.observations):
        partials[index % shards].ingest(observation)
    return partials


def merged_bundle(dataset, spec, shards=3):
    merged = spec.build()
    for partial in shard_bundles(dataset, spec, shards):
        merged.merge(partial)
    return merged


class TestBundleEqualsBatch:
    """Every bundle member, folded over shards, equals its batch analysis."""

    @pytest.fixture(scope="class")
    def bundle(self, dataset):
        return merged_bundle(dataset, BundleSpec(include_serving=True))

    def test_detection(self, bundle, outcomes):
        assert bundle.finalize_member("detection") == outcomes

    def test_cluster(self, bundle, dataset, outcomes):
        assert bundle.finalize_member("cluster") == cluster_canvases(
            outcomes, dataset.populations()
        )

    def test_prevalence(self, bundle, dataset, outcomes):
        assert bundle.finalize_member("prevalence") == compute_prevalence(dataset, outcomes)

    def test_reach(self, bundle, dataset, outcomes):
        populations = dataset.populations()
        fp = {
            pop: {
                d
                for d, o in outcomes.items()
                if o.is_fingerprinting_site and populations[d] == pop
            }
            for pop in ("top", "tail")
        }
        prevalence = compute_prevalence(dataset, outcomes)
        clusters = cluster_canvases(outcomes, populations)
        expected = compute_reach(
            clusters, fp["top"], fp["tail"], prevalence.top.sites_successful
        )
        assert bundle.finalize_member("reach") == expected

    def test_render_twice(self, bundle, outcomes):
        assert bundle.finalize_member("render_twice") == render_twice_fraction(outcomes)

    def test_serving(self, bundle, dataset, outcomes):
        assert bundle.finalize_member("serving") == analyze_serving_context(
            outcomes, dataset.populations(), dns=None
        )

    def test_stats(self, bundle, outcomes):
        stats = bundle.finalize_member("stats")
        assert stats.fraction == FingerprintDetector.fingerprintable_fraction(
            outcomes.values()
        )

    def test_shard_count_does_not_matter(self, dataset):
        spec = BundleSpec()
        one = merged_bundle(dataset, spec, shards=1).finalize()
        five = merged_bundle(dataset, spec, shards=5).finalize()
        assert one == five


class TestWrapperReducers:
    """Reducers outside the study bundle (blocklist, serving, fpjs, attribution)."""

    def _halves(self, dataset):
        observations = dataset.observations
        return observations[::2], observations[1::2]

    def test_blocklist_context(self, world, dataset, outcomes):
        easylist = RuleMatcher.from_text(world.easylist_text, "easylist")
        easyprivacy = RuleMatcher.from_text(world.easyprivacy_text, "easyprivacy")
        batch = analyze_blocklist_context(
            outcomes, dataset.populations(), easylist, easyprivacy, world.disconnect
        )
        detector = FingerprintDetector()
        merged = BlocklistContextReducer(easylist, easyprivacy, world.disconnect, detector)
        other = BlocklistContextReducer(easylist, easyprivacy, world.disconnect, detector)
        for half, reducer in zip(self._halves(dataset), (merged, other)):
            for observation in half:
                reducer.ingest(observation)
        assert merged.merge(other).finalize() == batch

    def test_serving_context_with_dns(self, world, dataset, outcomes):
        dns = world.network.dns
        batch = analyze_serving_context(outcomes, dataset.populations(), dns=dns)
        merged = ServingContextReducer(dns)
        other = ServingContextReducer(dns)
        for half, reducer in zip(self._halves(dataset), (merged, other)):
            for observation in half:
                reducer.ingest(observation)
        assert merged.merge(other).finalize() == batch

    def test_fpjs(self, dataset, outcomes):
        hashes = set()
        for outcome in outcomes.values():
            hashes.update(e.canvas_hash for e in outcome.fingerprintable[:1])
        batch = fpjs_breakdown(
            dataset.by_domain(), outcomes, dataset.populations(), hashes
        )
        merged = FpjsReducer(hashes)
        other = FpjsReducer(hashes)
        for half, reducer in zip(self._halves(dataset), (merged, other)):
            for observation in half:
                reducer.ingest(observation)
        assert merged.merge(other).finalize().counts == batch.counts

    def test_attribution(self, dataset, outcomes):
        signature = VendorSignature(name="probe", script_pattern="fp.min.js")
        attributor = VendorAttributor([signature])
        batch = attributor.attribute_all(dataset.by_domain(), outcomes)
        merged = AttributionReducer(attributor)
        other = AttributionReducer(attributor)
        for half, reducer in zip(self._halves(dataset), (merged, other)):
            for observation in half:
                reducer.ingest(observation)
        assert merged.merge(other).finalize()["attributions"] == batch


class TestAnalysisFold:
    def test_partition_merge_equals_refold(self, dataset):
        spec = BundleSpec()
        fold = AnalysisFold(spec)
        half = len(dataset.observations) // 2
        for observations in (dataset.observations[:half], dataset.observations[half:]):
            partial = spec.build()
            partial.ingest_many(observations)
            fold.add_partial(partial)
        merged = fold.merge(dataset)

        refold = AnalysisFold(spec).merge(dataset)  # no partials -> forced refold
        assert merged.finalize() == refold.finalize()
        assert merged.seen == refold.seen

    def test_overlapping_partials_refold_instead_of_double_count(self, dataset):
        spec = BundleSpec()
        fold = AnalysisFold(spec)
        half = len(dataset.observations) // 2
        # Second partial overlaps the first by one site (a salvaged
        # checkpoint overlapping a supervised re-dispatch).
        for observations in (
            dataset.observations[: half + 1],
            dataset.observations[half:],
        ):
            partial = spec.build()
            partial.ingest_many(observations)
            fold.add_partial(partial)
        merged = fold.merge(dataset)
        expected = AnalysisFold(spec).merge(dataset)
        assert merged.finalize() == expected.finalize()

    def test_direct_overlapping_merge_raises(self, dataset):
        spec = BundleSpec()
        a, b = spec.build(), spec.build()
        a.ingest(dataset.observations[0])
        b.ingest(dataset.observations[0])
        with pytest.raises(ValueError):
            a.merge(b)
