"""Tests for vendor attribution (§4.3 / A.3)."""

import pytest

from repro.core.attribution import (
    IMPERVA_URL_REGEX,
    VendorAttributor,
    VendorSignature,
)
from repro.core.detection import DetectionOutcome
from repro.core.records import CanvasExtraction, SiteObservation


def extraction(data, script):
    return CanvasExtraction(
        data_url=data, mime="image/png", width=200, height=50, script_url=script, canvas_id=1, t_ms=1.0
    )


def site(domain, *extractions):
    obs = SiteObservation(domain=domain, rank=1, population="top", success=True)
    outcome = DetectionOutcome(domain=domain)
    outcome.fingerprintable.extend(extractions)
    obs.extractions = list(extractions)
    return obs, outcome


def hash_of(data):
    return extraction(data, None).canvas_hash


@pytest.fixture
def attributor():
    return VendorAttributor(
        [
            VendorSignature(
                name="VendorA",
                canvas_hashes={hash_of("data:AAA")},
                script_pattern="vendor-a.com",
            ),
            VendorSignature(
                name="VendorB",
                canvas_hashes={hash_of("data:BBB")},
            ),
            VendorSignature(name="Imperva-like", url_regex=IMPERVA_URL_REGEX),
        ]
    )


class TestAttribution:
    def test_canvas_hash_match(self, attributor):
        obs, outcome = site("x.com", extraction("data:AAA", "https://x.com/bundle.js"))
        result = attributor.attribute_site(obs, outcome)
        assert result.vendors == {"VendorA"}
        assert result.evidence["VendorA"] == "canvas-match"

    def test_hash_match_survives_first_party_bundling(self, attributor):
        """Serving-mode evasions can't hide the canvas itself."""
        obs, outcome = site("x.com", extraction("data:AAA", "https://x.com/#inline"))
        assert attributor.attribute_site(obs, outcome).vendors == {"VendorA"}

    def test_script_pattern_match(self, attributor):
        obs, outcome = site("x.com", extraction("data:UNKNOWN", "https://cdn.vendor-a.com/fp.js"))
        result = attributor.attribute_site(obs, outcome)
        assert result.vendors == {"VendorA"}
        assert result.evidence["VendorA"] == "script-pattern"

    def test_url_regex_vendor(self, attributor):
        obs, outcome = site("x.com", extraction("data:UNIQ1", "https://x.com/AbCdE-FgHiJ"))
        assert "Imperva-like" in attributor.attribute_site(obs, outcome).vendors

    def test_url_regex_rejects_normal_scripts(self, attributor):
        obs, outcome = site("x.com", extraction("data:UNIQ2", "https://x.com/assets/app.js"))
        assert "Imperva-like" not in attributor.attribute_site(obs, outcome).vendors

    def test_multi_vendor_site(self, attributor):
        obs, outcome = site(
            "x.com",
            extraction("data:AAA", "https://x.com/a.js"),
            extraction("data:BBB", "https://x.com/b.js"),
        )
        assert attributor.attribute_site(obs, outcome).vendors == {"VendorA", "VendorB"}

    def test_unattributed_site(self, attributor):
        obs, outcome = site("x.com", extraction("data:ZZZ", "https://x.com/z.js"))
        assert attributor.attribute_site(obs, outcome).vendors == set()

    def test_duplicate_signatures_rejected(self):
        with pytest.raises(ValueError):
            VendorAttributor([VendorSignature(name="X"), VendorSignature(name="X")])


class TestAggregation:
    def test_counts_and_totals(self, attributor):
        obs1, out1 = site("a.com", extraction("data:AAA", "https://a.com/x.js"))
        obs2, out2 = site("b.com", extraction("data:AAA", "https://b.com/x.js"))
        obs3, out3 = site("c.com", extraction("data:ZZZ", "https://c.com/z.js"))
        observations = {"a.com": obs1, "b.com": obs2, "c.com": obs3}
        outcomes = {"a.com": out1, "b.com": out2, "c.com": out3}
        pops = {"a.com": "top", "b.com": "tail", "c.com": "top"}

        attributions = attributor.attribute_all(observations, outcomes)
        counts = attributor.vendor_site_counts(attributions, pops)
        assert counts["VendorA"] == {"top": 1, "tail": 1}
        totals = attributor.attributed_site_totals(attributions, pops)
        assert totals == {"top": 1, "tail": 1}  # c.com unattributed

    def test_non_fp_sites_skipped(self, attributor):
        obs, _ = site("a.com")
        empty = DetectionOutcome(domain="a.com")
        attributions = attributor.attribute_all({"a.com": obs}, {"a.com": empty})
        assert attributions == {}


class TestImpervaRegex:
    """Table 3's regex: https?://(?:www\\.)?[^/]+/([A-Za-z\\-]+)$"""

    @pytest.mark.parametrize(
        "url,matches",
        [
            ("https://shop.example/AbCdEf-GhIjKl", True),
            ("https://www.example.com/TokenPath", True),
            ("http://example.com/abc-def-ghi", True),
            ("https://example.com/path/deeper", False),
            ("https://example.com/script.js", False),
            ("https://example.com/has123digits", False),
            ("https://example.com/", False),
        ],
    )
    def test_cases(self, url, matches):
        assert bool(IMPERVA_URL_REGEX.match(url)) == matches
