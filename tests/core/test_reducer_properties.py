"""Property tests for the reducer merge algebra.

The streaming engine's correctness rests on one algebraic contract: over
partials with *disjoint* site sets, ``merge`` is associative and
commutative, the empty bundle is its identity, and any partition of a
stream folds to the same result as a single pass.  Hypothesis searches for
counterexamples over randomized observation streams (failures, lossy and
tiny canvases, animation scripts, inline scripts — every exclusion path).
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import CanvasApiCall, CanvasExtraction, SiteObservation
from repro.core.reducers import BundleSpec

SPEC = BundleSpec(include_serving=True)

#: A small canvas-content alphabet so distinct sites share canvases (the
#: whole point of clustering/reach) while hashes still collide across
#: partials in interesting ways.
DATA_URLS = [f"data:image/png;base64,CANVAS{i}" for i in range(6)]

SCRIPT_URLS = [
    None,
    "#inline",
    "https://fp.example/fp.min.js",
    "https://cdn.jsdelivr.net/npm/fp-kit@1/dist/fp.js",
    "https://fp.site-0.example/collect.js",
]


def _dims(data_url: str) -> int:
    """Width/height as a pure function of content, like a real renderer:
    the same drawing always extracts at the same size."""
    return 8 + (int(hashlib.sha256(data_url.encode()).hexdigest(), 16) % 3) * 40


@st.composite
def extraction(draw):
    data_url = draw(st.sampled_from(DATA_URLS))
    size = _dims(data_url)
    return CanvasExtraction(
        data_url=data_url,
        mime=draw(st.sampled_from(["image/png", "image/jpeg"])),
        width=size,
        height=size,
        script_url=draw(st.sampled_from(SCRIPT_URLS)),
        canvas_id=draw(st.integers(0, 2)),
        t_ms=0.0,
    )


@st.composite
def observation(draw, index: int):
    success = draw(st.booleans())
    site = SiteObservation(
        domain=f"site-{index}.example",
        rank=index + 1,
        population=draw(st.sampled_from(["top", "tail"])),
        success=success,
        failure_reason=None if success else "network-error",
    )
    if success:
        site.extractions = draw(st.lists(extraction(), max_size=4))
        if draw(st.booleans()):
            site.calls.append(
                CanvasApiCall(
                    interface="CanvasRenderingContext2D",
                    method="save",
                    args=(),
                    retval=None,
                    script_url=draw(st.sampled_from(SCRIPT_URLS)),
                    canvas_id=0,
                    t_ms=0.0,
                )
            )
    return site


@st.composite
def stream(draw, max_sites: int = 12):
    count = draw(st.integers(0, max_sites))
    return [draw(observation(index)) for index in range(count)]


def fold(observations):
    bundle = SPEC.build()
    bundle.ingest_many(observations)
    return bundle


def report(bundle):
    return bundle.finalize()


@settings(max_examples=40, deadline=None)
@given(stream())
def test_empty_bundle_is_merge_identity(observations):
    baseline = report(fold(observations))
    assert report(fold(observations).merge(SPEC.build())) == baseline
    assert report(SPEC.build().merge(fold(observations))) == baseline


@settings(max_examples=40, deadline=None)
@given(stream())
def test_merge_is_commutative(observations):
    a, b = observations[::2], observations[1::2]
    ab = fold(a).merge(fold(b))
    ba = fold(b).merge(fold(a))
    assert report(ab) == report(ba)
    assert ab.seen == ba.seen and ab.count == ba.count


@settings(max_examples=40, deadline=None)
@given(stream())
def test_merge_is_associative(observations):
    a, b, c = observations[::3], observations[1::3], observations[2::3]
    left = fold(a).merge(fold(b)).merge(fold(c))
    right = fold(b).merge(fold(c))
    right = fold(a).merge(right)
    assert report(left) == report(right)


@settings(max_examples=40, deadline=None)
@given(stream(), st.data())
def test_any_partition_folds_to_the_single_pass(observations, data):
    single = report(fold(observations))
    if observations:
        cut = data.draw(st.integers(0, len(observations)))
    else:
        cut = 0
    merged = fold(observations[:cut]).merge(fold(observations[cut:]))
    assert report(merged) == single


@settings(max_examples=40, deadline=None)
@given(stream())
def test_ingest_then_merge_equals_merge_then_ingest(observations):
    """Folding a site into a partial before or after an (unrelated) merge
    cannot change the result."""
    if not observations:
        return
    head, rest = observations[0], observations[1:]
    before = fold(rest)
    before.ingest(head)

    after = fold(rest)
    extra = SPEC.build()
    extra.ingest(head)
    after.merge(extra)
    assert report(before) == report(after)
