"""Tests for the §3.2 detection heuristics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.detection import ExclusionReason, FingerprintDetector, MIN_CANVAS_SIZE
from repro.core.records import CanvasApiCall, CanvasExtraction, SiteObservation


def extraction(mime="image/png", w=240, h=60, script="https://v.com/fp.js", data="data:x", t=1.0):
    return CanvasExtraction(
        data_url=data, mime=mime, width=w, height=h, script_url=script, canvas_id=1, t_ms=t
    )


def call(method, script="https://v.com/fp.js"):
    return CanvasApiCall(
        interface="CanvasRenderingContext2D",
        method=method,
        args=(),
        retval=None,
        script_url=script,
        canvas_id=1,
        t_ms=0.5,
    )


def obs(extractions=(), calls=(), domain="site.com"):
    return SiteObservation(
        domain=domain,
        rank=1,
        population="top",
        success=True,
        calls=list(calls),
        extractions=list(extractions),
    )


@pytest.fixture
def detector():
    return FingerprintDetector()


class TestHeuristics:
    def test_png_large_canvas_is_fingerprintable(self, detector):
        outcome = detector.detect(obs([extraction()]))
        assert outcome.is_fingerprinting_site
        assert not outcome.excluded

    def test_jpeg_excluded(self, detector):
        outcome = detector.detect(obs([extraction(mime="image/jpeg")]))
        assert outcome.excluded_by(ExclusionReason.LOSSY_FORMAT)
        assert not outcome.is_fingerprinting_site

    def test_webp_excluded(self, detector):
        outcome = detector.detect(obs([extraction(mime="image/webp", w=1, h=1)]))
        # Lossy check fires first, which also covers webp compat checks.
        assert outcome.excluded_by(ExclusionReason.LOSSY_FORMAT)

    @pytest.mark.parametrize("w,h", [(15, 100), (100, 15), (5, 5), (12, 12), (1, 1)])
    def test_small_canvases_excluded(self, detector, w, h):
        outcome = detector.detect(obs([extraction(w=w, h=h)]))
        assert outcome.excluded_by(ExclusionReason.TOO_SMALL)

    def test_16x16_boundary_is_fingerprintable(self, detector):
        outcome = detector.detect(obs([extraction(w=MIN_CANVAS_SIZE, h=MIN_CANVAS_SIZE)]))
        assert outcome.is_fingerprinting_site

    @pytest.mark.parametrize("method", ["save", "restore"])
    def test_animation_script_excluded(self, detector, method):
        outcome = detector.detect(obs([extraction()], calls=[call(method)]))
        assert outcome.excluded_by(ExclusionReason.ANIMATION_SCRIPT)

    def test_animation_by_other_script_does_not_exclude(self, detector):
        outcome = detector.detect(
            obs([extraction(script="https://v.com/fp.js")], calls=[call("save", script="https://other.com/anim.js")])
        )
        assert outcome.is_fingerprinting_site

    def test_mixed_site(self, detector):
        outcome = detector.detect(
            obs(
                [
                    extraction(),                             # fingerprintable
                    extraction(mime="image/webp", w=1, h=1),  # webp check
                    extraction(w=12, h=12),                   # small canvas
                ]
            )
        )
        assert len(outcome.fingerprintable) == 1
        assert len(outcome.excluded) == 2
        assert outcome.total_extractions == 3
        assert not outcome.fully_excluded

    def test_fully_excluded_site(self, detector):
        outcome = detector.detect(obs([extraction(w=5, h=5)]))
        assert outcome.fully_excluded

    def test_site_without_extractions(self, detector):
        outcome = detector.detect(obs([]))
        assert not outcome.is_fingerprinting_site
        assert not outcome.fully_excluded


class TestAggregates:
    def test_fingerprintable_fraction(self, detector):
        outcomes = [
            detector.detect(obs([extraction(), extraction(mime="image/jpeg")])),
            detector.detect(obs([extraction()], domain="b.com")),
        ]
        assert FingerprintDetector.fingerprintable_fraction(outcomes) == pytest.approx(2 / 3)

    def test_fraction_empty(self):
        assert FingerprintDetector.fingerprintable_fraction([]) == 0.0

    def test_detect_all_keys_by_domain(self, detector):
        outcomes = detector.detect_all([obs([], domain="a.com"), obs([], domain="b.com")])
        assert set(outcomes) == {"a.com", "b.com"}


@given(
    w=st.integers(1, 400),
    h=st.integers(1, 400),
    mime=st.sampled_from(["image/png", "image/jpeg", "image/webp"]),
)
def test_classification_is_total_and_consistent(w, h, mime):
    detector = FingerprintDetector()
    e = extraction(mime=mime, w=w, h=h)
    reason = detector.classify_extraction(e, set())
    if mime != "image/png":
        assert reason is ExclusionReason.LOSSY_FORMAT
    elif w < 16 or h < 16:
        assert reason is ExclusionReason.TOO_SMALL
    else:
        assert reason is None
