"""Tests for the §4.3.1 FingerprintJS ecosystem breakdown."""

from repro.core.detection import DetectionOutcome
from repro.core.fpjs import fpjs_breakdown
from repro.core.records import CanvasExtraction, SiteObservation


def extraction(data, script):
    return CanvasExtraction(
        data_url=data, mime="image/png", width=200, height=50, script_url=script, canvas_id=1, t_ms=1.0
    )


def make_site(domain, script_url, source, data="data:FPJS"):
    e = extraction(data, script_url)
    obs = SiteObservation(
        domain=domain,
        rank=1,
        population="top",
        success=True,
        extractions=[e],
        script_sources={script_url: source} if script_url else {},
    )
    outcome = DetectionOutcome(domain=domain)
    outcome.fingerprintable.append(e)
    return obs, outcome, e.canvas_hash


class TestBreakdown:
    def build(self, *sites):
        observations, outcomes, hashes = {}, {}, set()
        pops = {}
        for obs, outcome, h in sites:
            observations[obs.domain] = obs
            outcomes[obs.domain] = outcome
            hashes.add(h)
            pops[obs.domain] = obs.population
        return observations, outcomes, pops, hashes

    def test_commercial_by_content_marker(self):
        site = make_site(
            "a.com", "https://fp.a.com/pro.js", "var x; var __mathmlProbe = 1; /* pro */"
        )
        observations, outcomes, pops, hashes = self.build(site)
        breakdown = fpjs_breakdown(observations, outcomes, pops, hashes)
        assert breakdown.get("commercial")["top"] == 1

    def test_commercial_by_url(self):
        site = make_site("a.com", "https://fpnpmcdn.net/v4/pro.min.js", None)
        observations, outcomes, pops, hashes = self.build(site)
        assert fpjs_breakdown(observations, outcomes, pops, hashes).get("commercial")["top"] == 1

    def test_adtech_by_host(self):
        site = make_site("a.com", "https://js.aldata-media.com/fp.min.js", "oss code")
        observations, outcomes, pops, hashes = self.build(site)
        assert fpjs_breakdown(observations, outcomes, pops, hashes).get("AIdata")["top"] == 1

    def test_adtech_by_bundled_banner(self):
        site = make_site(
            "a.com", "https://a.com/#inline", "/* MGID audience integration */ oss code"
        )
        observations, outcomes, pops, hashes = self.build(site)
        assert fpjs_breakdown(observations, outcomes, pops, hashes).get("MGID")["top"] == 1

    def test_self_hosted_is_oss(self):
        site = make_site("a.com", "https://a.com/assets/app.js", "plain oss fingerprint code")
        observations, outcomes, pops, hashes = self.build(site)
        assert fpjs_breakdown(observations, outcomes, pops, hashes).get("oss")["top"] == 1

    def test_commercial_evidence_wins(self):
        e1 = extraction("data:FPJS", "https://js.aldata-media.com/fp.min.js")
        e2 = extraction("data:FPJS2", "https://fpnpmcdn.net/v4/pro.min.js")
        obs = SiteObservation(
            domain="multi.com", rank=1, population="top", success=True, extractions=[e1, e2]
        )
        outcome = DetectionOutcome(domain="multi.com")
        outcome.fingerprintable.extend([e1, e2])
        breakdown = fpjs_breakdown(
            {"multi.com": obs},
            {"multi.com": outcome},
            {"multi.com": "top"},
            {e1.canvas_hash, e2.canvas_hash},
        )
        assert breakdown.get("commercial")["top"] == 1
        assert breakdown.get("AIdata")["top"] == 0

    def test_non_fpjs_sites_ignored(self):
        site = make_site("a.com", "https://other.com/x.js", "code", data="data:OTHER")
        observations, outcomes, pops, _ = self.build(site)
        breakdown = fpjs_breakdown(observations, outcomes, pops, {"nomatch"})
        assert breakdown.counts == {}


class TestEndToEnd:
    def test_breakdown_over_synthetic_world(self):
        from repro.config import StudyScale
        from repro.webgen import build_world

        world = build_world(StudyScale(fraction=0.04, seed=31337))
        result = world.run_full_study(include_adblock_crawls=False)
        fpjs_sig = next(s for s in result.signatures if s.name == "FingerprintJS")
        breakdown = fpjs_breakdown(
            result.control.by_domain(), result.outcomes, result.populations, fpjs_sig.canvas_hashes
        )
        total = sum(r["top"] + r["tail"] for r in breakdown.counts.values())
        fpjs_sites = result.vendor_counts["FingerprintJS"]
        assert total == fpjs_sites["top"] + fpjs_sites["tail"]
        # OSS self-hosting dominates, as in the paper.
        oss = breakdown.get("oss")
        assert oss["top"] + oss["tail"] >= total * 0.4
