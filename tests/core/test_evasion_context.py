"""Tests for context (§5.1) and evasion (§5.2-5.3) analyses."""

import pytest

from repro.blocklists.disconnect import DisconnectList
from repro.blocklists.matcher import RuleMatcher
from repro.core.context import analyze_blocklist_context
from repro.core.detection import DetectionOutcome
from repro.core.evasion import analyze_serving_context, render_twice_fraction
from repro.core.records import CanvasExtraction
from repro.net.dns import DNSZone


def extraction(data, script):
    return CanvasExtraction(
        data_url=data, mime="image/png", width=200, height=50, script_url=script, canvas_id=1, t_ms=1.0
    )


def outcome(domain, *extractions):
    o = DetectionOutcome(domain=domain)
    o.fingerprintable.extend(extractions)
    return o


class TestBlocklistContext:
    @pytest.fixture
    def lists(self):
        easylist = RuleMatcher.from_text("||listed-ads.net^$script\n", "el")
        easyprivacy = RuleMatcher.from_text("||listed-ads.net^$script\n||tracker.io^$script\n", "ep")
        disconnect = DisconnectList()
        disconnect.add("listed-ads.net")
        return easylist, easyprivacy, disconnect

    def test_coverage_counting(self, lists):
        el, ep, dc = lists
        outcomes = {
            "a.com": outcome("a.com", extraction("data:1", "https://listed-ads.net/fp.js")),
            "b.com": outcome("b.com", extraction("data:2", "https://tracker.io/fp.js")),
            "c.com": outcome("c.com", extraction("data:3", "https://clean.org/fp.js")),
        }
        pops = {"a.com": "top", "b.com": "top", "c.com": "tail"}
        ctx = analyze_blocklist_context(outcomes, pops, el, ep, dc)
        assert ctx.totals.top == 2 and ctx.totals.tail == 1
        assert ctx.easylist.top == 1
        assert ctx.easyprivacy.top == 2
        assert ctx.disconnect.top == 1
        assert ctx.any_list.top == 2
        assert ctx.all_lists.top == 1  # only listed-ads.net is in all three
        assert ctx.any_list.tail == 0

    def test_inline_scripts_never_match(self, lists):
        el, ep, dc = lists
        outcomes = {
            "a.com": outcome("a.com", extraction("data:1", "https://a.com/#inline")),
        }
        ctx = analyze_blocklist_context(outcomes, {"a.com": "top"}, el, ep, dc)
        assert ctx.any_list.top == 0


class TestServingContext:
    def test_first_party_and_subdomain(self):
        outcomes = {
            "a.com": outcome(
                "a.com",
                extraction("data:1", "https://fp.a.com/collect.js"),
            ),
            "b.com": outcome("b.com", extraction("data:2", "https://vendor.net/fp.js")),
        }
        pops = {"a.com": "top", "b.com": "top"}
        ctx = analyze_serving_context(outcomes, pops)
        assert ctx.fp_sites["top"] == 2
        assert ctx.first_party_sites["top"] == 1
        assert ctx.subdomain_sites["top"] == 1
        assert ctx.first_party_fraction("top") == 0.5

    def test_bundled_inline_counts_first_party(self):
        outcomes = {"a.com": outcome("a.com", extraction("data:1", "https://a.com/#inline"))}
        ctx = analyze_serving_context(outcomes, {"a.com": "top"})
        assert ctx.first_party_sites["top"] == 1
        assert ctx.subdomain_sites["top"] == 0

    def test_cdn_detection(self):
        outcomes = {
            "a.com": outcome(
                "a.com", extraction("data:1", "https://cdn.jsdelivr.net/npm/fp@1/fp.min.js")
            )
        }
        ctx = analyze_serving_context(outcomes, {"a.com": "top"})
        assert ctx.cdn_sites["top"] == 1
        assert ctx.first_party_sites["top"] == 0

    def test_cname_cloak_detection(self):
        dns = DNSZone()
        dns.add_cname("metrics.a.com", "collector.vendor.net")
        dns.add_a("collector.vendor.net", "203.0.113.9")
        outcomes = {"a.com": outcome("a.com", extraction("data:1", "https://metrics.a.com/fp.js"))}
        ctx = analyze_serving_context(outcomes, {"a.com": "top"}, dns=dns)
        assert ctx.cname_cloaked_sites["top"] == 1
        # Cloaking still looks first-party from the URL.
        assert ctx.first_party_sites["top"] == 1
        # But it is not counted as genuine subdomain delegation.
        assert ctx.subdomain_sites["top"] == 0

    def test_non_fp_sites_ignored(self):
        ctx = analyze_serving_context({"a.com": DetectionOutcome(domain="a.com")}, {"a.com": "top"})
        assert ctx.fp_sites["top"] == 0


class TestRenderTwice:
    def test_double_extraction_detected(self):
        outcomes = {
            "a.com": outcome("a.com", extraction("data:X", "s"), extraction("data:X", "s")),
            "b.com": outcome("b.com", extraction("data:Y", "s")),
        }
        assert render_twice_fraction(outcomes) == 0.5

    def test_two_different_canvases_not_double(self):
        outcomes = {
            "a.com": outcome("a.com", extraction("data:X", "s"), extraction("data:Y", "s")),
        }
        assert render_twice_fraction(outcomes) == 0.0

    def test_empty(self):
        assert render_twice_fraction({}) == 0.0
