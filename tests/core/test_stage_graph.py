"""Stage protocol, cache-key chaining, topological execution, caching."""

import pytest

from repro.core.stages.cache import StageCache
from repro.core.stages.fingerprint import stable_hash
from repro.core.stages.graph import StageGraph, StageGraphError
from repro.core.stages.stage import Stage


class Source(Stage):
    name = "source"

    def __init__(self, value=1, salt="s"):
        self.value = value
        self.salt = salt
        self.runs = 0

    def config_fingerprint(self, ctx):
        return {"salt": self.salt}

    def run(self, ctx, inputs):
        self.runs += 1
        return self.value


class Double(Stage):
    name = "double"
    inputs = ("source",)

    def __init__(self):
        self.runs = 0

    def run(self, ctx, inputs):
        self.runs += 1
        return inputs["source"] * 2


class Sum(Stage):
    name = "sum"
    inputs = ("source", "double")

    def run(self, ctx, inputs):
        return inputs["source"] + inputs["double"]


class TestStableHash:
    def test_deterministic_across_orderings(self):
        assert stable_hash({"a": 1, "b": [2, 3]}) == stable_hash({"b": [2, 3], "a": 1})

    def test_distinguishes_values(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_rejects_unfingerprittable(self):
        with pytest.raises(TypeError):
            stable_hash(object())


class TestGraphValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(StageGraphError, match="duplicate"):
            StageGraph([Source(), Source()])

    def test_unknown_input_rejected(self):
        with pytest.raises(StageGraphError, match="unknown artifact"):
            StageGraph([Double()])

    def test_cycle_rejected(self):
        class A(Stage):
            name = "a"
            inputs = ("b",)

        class B(Stage):
            name = "b"
            inputs = ("a",)

        with pytest.raises(StageGraphError, match="cycle"):
            StageGraph([A(), B()])

    def test_topological_order_respects_dependencies(self):
        graph = StageGraph([Sum(), Double(), Source()])
        order = [s.name for s in graph.order]
        assert order.index("source") < order.index("double") < order.index("sum")


class TestExecution:
    def test_artifacts_flow_through_inputs(self):
        graph = StageGraph([Source(value=3), Double(), Sum()])
        run = graph.execute(ctx=None)
        assert run.artifacts == {"source": 3, "double": 6, "sum": 9}
        assert [t.name for t in run.timings] == ["source", "double", "sum"]
        assert all(not t.cached for t in run.timings)

    def test_only_executes_dependency_closure(self):
        source, double, total = Source(), Double(), Sum()
        graph = StageGraph([source, double, total])
        run = graph.execute(ctx=None, only=["double"])
        assert set(run.artifacts) == {"source", "double"}
        assert total.name not in run.artifacts

    def test_only_unknown_stage_raises(self):
        graph = StageGraph([Source()])
        with pytest.raises(StageGraphError, match="unknown stage"):
            graph.execute(ctx=None, only=["nope"])


class TestCacheKeys:
    def test_keys_chain_through_inputs(self):
        """Changing an upstream config invalidates every downstream key."""
        g1 = StageGraph([Source(salt="one"), Double(), Sum()])
        g2 = StageGraph([Source(salt="two"), Double(), Sum()])
        k1 = g1.execute(ctx=None).keys
        k2 = g2.execute(ctx=None).keys
        assert k1["source"] != k2["source"]
        assert k1["double"] != k2["double"]
        assert k1["sum"] != k2["sum"]

    def test_same_config_same_keys(self):
        k1 = StageGraph([Source(), Double()]).execute(ctx=None).keys
        k2 = StageGraph([Source(), Double()]).execute(ctx=None).keys
        assert k1 == k2

    def test_version_bump_changes_key(self):
        class SourceV2(Source):
            version = "2"

        k1 = StageGraph([Source()]).execute(ctx=None).keys
        k2 = StageGraph([SourceV2()]).execute(ctx=None).keys
        assert k1["source"] != k2["source"]


class TestStageCache:
    def test_hit_skips_run(self, tmp_path):
        cache = StageCache(tmp_path)
        source = Source(value=7)
        graph = StageGraph([source, Double()], cache=cache)
        first = graph.execute(ctx=None)
        assert first.cache_hits == 0 and source.runs == 1

        source2 = Source(value=7)
        graph2 = StageGraph([source2, Double()], cache=cache)
        second = graph2.execute(ctx=None)
        assert second.cache_hits == 2
        assert source2.runs == 0
        assert second.artifacts == first.artifacts
        assert second.keys == first.keys

    def test_config_change_misses(self, tmp_path):
        cache = StageCache(tmp_path)
        StageGraph([Source(salt="a")], cache=cache).execute(ctx=None)
        run = StageGraph([Source(salt="b")], cache=cache).execute(ctx=None)
        assert run.cache_hits == 0

    def test_corrupt_entry_is_evicted_not_fatal(self, tmp_path):
        cache = StageCache(tmp_path)
        graph = StageGraph([Source(value=5)], cache=cache)
        run = graph.execute(ctx=None)
        path = cache.path_for("source", run.keys["source"])
        path.write_bytes(b"\x00garbage")

        fresh = Source(value=5)
        rerun = StageGraph([fresh], cache=cache).execute(ctx=None)
        assert rerun.cache_hits == 0
        assert fresh.runs == 1
        assert rerun.artifacts["source"] == 5

    def test_dataset_artifacts_roundtrip_as_jsonl(self, tmp_path):
        from repro.crawler.crawl import CrawlDataset
        from repro.core.records import SiteObservation

        class CrawlLike(Stage):
            name = "crawl"
            artifact = "dataset"

            def run(self, ctx, inputs):
                ds = CrawlDataset(label="x")
                ds.observations.append(
                    SiteObservation(domain="a.example", rank=1, population="top", success=True)
                )
                return ds

        cache = StageCache(tmp_path)
        first = StageGraph([CrawlLike()], cache=cache).execute(ctx=None)
        assert cache.path_for("crawl", first.keys["crawl"], "dataset").name.endswith(".jsonl.gz")
        second = StageGraph([CrawlLike()], cache=cache).execute(ctx=None)
        assert second.cache_hits == 1
        assert second.artifacts["crawl"].observations == first.artifacts["crawl"].observations
