"""Cross-process propagation: spans and metrics from shard workers must
appear exactly once in the merged run log under ``jobs=4`` with fault
injection — the ISSUE's satellite test.

Also pins the pooled-worker delta semantics: a worker process that runs
several shard tasks back to back must not re-ship earlier tasks' perf or
metric activity (cumulative snapshots would double-count on merge).
"""

from dataclasses import asdict

import pytest

from repro import obs, perf
from repro.config import StudyScale
from repro.crawler.resilience import RetryPolicy
from repro.crawler.shards import _crawl_shard_worker, run_sharded_crawl
from repro.net.faults import FaultConfig, FaultyNetwork
from repro.obs.config import ObsConfig
from repro.obs.inspect import crawl_totals, load_run
from repro.obs.recorder import RunRecorder
from repro.webgen import build_world

RETRIES = RetryPolicy(max_attempts=3)


@pytest.fixture(scope="module")
def world():
    return build_world(StudyScale(fraction=0.01))


def faulty(world, seed=7):
    return FaultyNetwork(world.network, FaultConfig(fault_rate=0.15), seed=seed)


class TestShardedRunLog:
    @pytest.fixture(scope="class")
    def sharded(self, world, tmp_path_factory):
        previous = obs.config()
        obs.configure(ObsConfig(trace=True))
        obs.reset()
        run_dir = tmp_path_factory.mktemp("sharded") / "obs"
        try:
            recorder = RunRecorder(run_dir, label="crawl", seed=7).start()
            # More shards than jobs: pooled workers run several tasks each,
            # which is exactly the double-count trap the deltas must avoid.
            dataset = run_sharded_crawl(
                faulty(world),
                world.all_targets,
                label="control",
                jobs=4,
                shards=8,
                retry_policy=RETRIES,
            )
            recorder.finish(health=asdict(dataset.health()))
        finally:
            obs.configure(previous)
        return dataset, run_dir

    def test_metrics_totals_exactly_once(self, sharded):
        dataset, run_dir = sharded
        health = dataset.health()
        totals = crawl_totals(load_run(run_dir), "control")
        assert totals["total"] == health.total
        assert totals["successes"] == health.successes
        assert totals["recovered"] == health.recovered
        assert totals["attempts_histogram"] == health.attempts_histogram
        assert totals["failure_rows"] == tuple(health.failure_rows)
        assert totals["total_attempts"] == health.total_attempts

    def test_page_spans_exactly_once(self, sharded):
        dataset, run_dir = sharded
        log = load_run(run_dir)
        domains = [r["attrs"]["domain"] for r in log.spans("crawl.page")]
        assert len(domains) == len(set(domains)), "a worker span was merged twice"
        assert sorted(domains) == sorted(o.domain for o in dataset.observations)

    def test_worker_lanes_are_labelled(self, sharded):
        _, run_dir = sharded
        log = load_run(run_dir)
        shard_spans = log.spans("crawl.shard")
        assert len(shard_spans) == 8
        tids = {r["tid"] for r in shard_spans}
        assert tids == {f"shard-{i}" for i in range(8)}
        # Page spans carry their worker's lane, not the parent's.
        page_tids = {r["tid"] for r in log.spans("crawl.page")}
        assert page_tids <= tids

    def test_serial_counters_match_serial_health(self, world):
        """The counter path agrees with health() regardless of jobs.

        (Serial and sharded crawls see slightly different fault schedules —
        the injector's per-URL attempt clocks are per-process — so the two
        runs are compared against their own health, not each other.)
        """
        previous = obs.config()
        obs.configure(ObsConfig(trace=False))
        obs.reset()
        try:
            serial = run_sharded_crawl(
                faulty(world),
                world.all_targets,
                label="control",
                jobs=1,
                retry_policy=RETRIES,
            )
            counters = obs.METRICS.snapshot()["counters"]
        finally:
            obs.configure(previous)
        health = serial.health()
        assert counters["crawler.pages[control]"] == health.total
        assert counters["crawler.pages_ok[control]"] == health.successes
        assert counters.get("crawler.recovered[control]", 0) == health.recovered
        histogram = {
            int(name[: -len("]")].rsplit("|", 1)[1]): value
            for name, value in counters.items()
            if name.startswith("crawler.attempts[control|")
        }
        assert histogram == health.attempts_histogram


class TestPooledWorkerDeltas:
    def test_worker_ships_per_task_deltas(self, world, untraced):
        """Calling the worker entry point twice in one process must not
        re-ship the first task's perf counters or metrics."""
        shard = list(world.all_targets[:4])
        payload = (
            faulty(world), shard, None, "control", RETRIES, None, (),
            None, False, perf.current_config(), ObsConfig(trace=True), "shard-0",
            None, None, None,
        )
        _, perf_delta_1, obs_payload_1, _ = _crawl_shard_worker(payload)
        _, perf_delta_2, obs_payload_2, _ = _crawl_shard_worker(payload)
        pages_1 = obs_payload_1["metrics"]["counters"]["crawler.pages[control]"]
        pages_2 = obs_payload_2["metrics"]["counters"]["crawler.pages[control]"]
        assert pages_1 == len(shard)
        assert pages_2 == len(shard), "second task re-shipped the first task's metrics"
        # Span buffers drain per task, too.
        spans_1 = [r for r in obs_payload_1["spans"] if r["name"] == "crawl.page"]
        spans_2 = [r for r in obs_payload_2["spans"] if r["name"] == "crawl.page"]
        assert len(spans_1) == len(shard)
        assert len(spans_2) == len(shard)
        # Perf deltas are windows, not cumulative snapshots: merging both
        # must equal the sum of the windows (no double-count).
        for layer in perf_delta_2:
            if layer in perf_delta_1:
                assert perf_delta_2[layer]["misses"] <= (
                    perf_delta_1[layer]["misses"] + perf_delta_2[layer]["misses"]
                )

    def test_ingest_worker_is_exactly_once_per_payload(self, untraced):
        obs.configure(ObsConfig(trace=True))
        before = obs.METRICS.snapshot()
        obs.inc("crawler.pages[control]", 5)
        with obs.span("crawl.shard"):
            pass
        payload = obs.worker_payload(before)
        obs.reset()
        obs.ingest_worker(payload)
        assert obs.METRICS.counter("crawler.pages[control]") == 5
        assert len(obs.TRACE.records()) == 1
        obs.ingest_worker(None)  # a skipped worker ships nothing
        assert obs.METRICS.counter("crawler.pages[control]") == 5
