"""Tests for the run-history ledger (repro.obs.ledger) and its CLI verbs.

Synthetic entries drive the diff/regress logic (threshold crossings, the
config-digest gate, the 0/1/2 exit contract); a real recorder round-trip
pins that every finished run lands in ``runs.jsonl`` torn-line tolerant.
"""

import json

import pytest

from repro import obs
from repro.obs import ledger
from repro.obs.__main__ import main as obs_main
from repro.obs.recorder import RunRecorder


def entry(run_id="aaaabbbbcccc", digest="cfg1", label="study", stages=(),
          counters=None, profile=None, created="2026-08-08T00:00:00"):
    """A synthetic ledger line; ``stages`` is ((name, seconds, cached), ...)."""
    return {
        "t": "ledger-run",
        "run_id": run_id,
        "label": label,
        "created": created,
        "git": None,
        "config_digest": digest,
        "seed": 1,
        "shard_plan": None,
        "stages": [
            {"name": n, "seconds": s, "cached": c} for n, s, c in stages
        ],
        "metrics": {"counters": counters or {}},
        "profile": profile,
        "health": None,
    }


def rates(hits, misses, layer="glyph"):
    return {
        f"render_cache.{layer}.hits": hits,
        f"render_cache.{layer}.misses": misses,
    }


class TestEntryAndStorage:
    def test_make_entry_accepts_timing_objects_and_dicts(self):
        class Timing:
            name = "crawl.control"
            seconds = 1.5
            cached = False

        made = ledger.make_entry(
            "study",
            {"created": "t", "git": "abc", "config_digest": "d", "seed": 3},
            stage_timings=[Timing(), {"name": "detect", "seconds": 0.2, "cached": True}],
        )
        assert made["t"] == "ledger-run"
        assert made["config_digest"] == "d"
        assert made["stages"] == [
            {"name": "crawl.control", "seconds": 1.5, "cached": False},
            {"name": "detect", "seconds": 0.2, "cached": True},
        ]
        assert len(made["run_id"]) == 12

    def test_run_ids_are_unique(self):
        manifest = {"created": "t"}
        ids = {ledger.make_entry("x", manifest)["run_id"] for _ in range(20)}
        assert len(ids) == 20

    def test_append_and_load_roundtrip(self, tmp_path):
        for i in range(3):
            ledger.append_run(tmp_path, entry(run_id=f"run{i:09d}aaa"))
        loaded = ledger.load_ledger(tmp_path)
        assert [e["run_id"] for e in loaded] == [f"run{i:09d}aaa" for i in range(3)]
        # The path helper accepts the file itself too.
        assert ledger.load_ledger(tmp_path / ledger.LEDGER_NAME) == loaded

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = ledger.append_run(tmp_path, entry(run_id="intact000000"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"t": "ledger-run", "run_id": "torn')  # killed mid-append
        loaded = ledger.load_ledger(tmp_path)
        assert [e["run_id"] for e in loaded] == ["intact000000"]

    def test_foreign_lines_are_ignored(self, tmp_path):
        path = ledger.ledger_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"t": "event", "name": "not-a-run"}) + "\n"
            + json.dumps(entry(run_id="realrun00000")) + "\n"
            + "\n",
            encoding="utf-8",
        )
        assert [e["run_id"] for e in ledger.load_ledger(tmp_path)] == ["realrun00000"]

    def test_missing_ledger_is_empty(self, tmp_path):
        assert ledger.load_ledger(tmp_path / "nope") == []

    def test_recorder_finish_appends_a_ledger_run(self, traced, tmp_path):
        recorder = RunRecorder(tmp_path / "run", label="crawl", seed=9).start()
        obs.inc("crawler.pages[control]", 4)
        recorder.finish(health={"total": 4})
        (e,) = ledger.load_ledger(tmp_path / "run")
        assert e["run_id"] == recorder.run_id
        assert e["label"] == "crawl"
        assert e["seed"] == 9
        assert "config_digest" in e  # None here: no stage graph ran
        assert e["metrics"]["counters"]["crawler.pages[control]"] == 4
        assert e["health"] == {"total": 4}
        # A second run appends (the trace log is per-run, the ledger is not).
        RunRecorder(tmp_path / "run", label="crawl", seed=9).start().finish()
        assert len(ledger.load_ledger(tmp_path / "run")) == 2


class TestResolveRun:
    ENTRIES = [
        entry(run_id="aaa111111111"),
        entry(run_id="aab222222222"),
        entry(run_id="bbb333333333"),
    ]

    def test_selectors(self):
        assert ledger.resolve_run(self.ENTRIES, "latest")["run_id"] == "bbb333333333"
        assert ledger.resolve_run(self.ENTRIES, "last")["run_id"] == "bbb333333333"
        assert ledger.resolve_run(self.ENTRIES, "prev")["run_id"] == "aab222222222"
        assert ledger.resolve_run(self.ENTRIES, "-1")["run_id"] == "bbb333333333"
        assert ledger.resolve_run(self.ENTRIES, "-3")["run_id"] == "aaa111111111"
        assert ledger.resolve_run(self.ENTRIES, "0")["run_id"] == "aaa111111111"
        assert ledger.resolve_run(self.ENTRIES, "bbb")["run_id"] == "bbb333333333"

    def test_errors(self):
        with pytest.raises(ValueError, match="empty"):
            ledger.resolve_run([], "latest")
        with pytest.raises(ValueError, match="out of range"):
            ledger.resolve_run(self.ENTRIES, "-4")
        with pytest.raises(ValueError, match="no run with id prefix"):
            ledger.resolve_run(self.ENTRIES, "zzz")
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.resolve_run(self.ENTRIES, "aa")


class TestHistoryText:
    def test_empty(self):
        assert "empty run ledger" in ledger.history_text([])

    def test_table_rows(self):
        entries = [
            entry(run_id="aaa111111111", stages=(("crawl.control", 2.0, False),),
                  counters={"crawler.pages[control]": 40},
                  profile={"samples": 170, "seconds": 1.7}),
            entry(run_id="bbb222222222"),
        ]
        text = ledger.history_text(entries)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 runs
        assert lines[1].lstrip().startswith("-2 ")
        assert "aaa111111111" in lines[1]
        assert "170" in lines[1]  # profile samples column
        assert "40" in lines[1]  # pages column
        assert lines[2].lstrip().startswith("-1 ")

    def test_top_truncates_to_newest(self):
        entries = [entry(run_id=f"run{i:09d}aaa") for i in range(5)]
        text = ledger.history_text(entries, top=2)
        assert "run000000003" in text and "run000000004" in text
        assert "run000000000" not in text


class TestDiffText:
    def test_identical_runs_have_no_regressions(self):
        a = entry(stages=(("crawl.control", 2.0, False),), counters=rates(80, 20))
        b = entry(run_id="bbbbbbbbbbbb", stages=(("crawl.control", 2.05, False),),
                  counters=rates(81, 20))
        text, regressions = ledger.diff_text(a, b)
        assert regressions == 0
        assert "no regressions" in text

    def test_stage_slowdown_past_threshold_regresses(self):
        a = entry(stages=(("crawl.control", 2.0, False),))
        b = entry(run_id="bbbbbbbbbbbb", stages=(("crawl.control", 3.0, False),))
        text, regressions = ledger.diff_text(a, b, threshold=0.25)
        assert regressions == 1
        assert "REGRESSED" in text
        assert "1 regression(s)" in text

    def test_speedup_is_labelled_improved_not_regressed(self):
        a = entry(stages=(("crawl.control", 3.0, False),))
        b = entry(run_id="bbbbbbbbbbbb", stages=(("crawl.control", 1.0, False),))
        text, regressions = ledger.diff_text(a, b)
        assert regressions == 0
        assert "improved" in text

    def test_micro_stage_jitter_is_not_a_regression(self):
        a = entry(stages=(("manifest", 0.001, False),))
        b = entry(run_id="bbbbbbbbbbbb", stages=(("manifest", 0.004, False),))
        _, regressions = ledger.diff_text(a, b)
        assert regressions == 0  # 4x but under TIMING_FLOOR_S

    def test_different_config_digests_never_regress(self):
        a = entry(digest="cfg1", stages=(("crawl.control", 2.0, False),))
        b = entry(run_id="bbbbbbbbbbbb", digest="cfg2",
                  stages=(("crawl.control", 9.0, False),))
        text, regressions = ledger.diff_text(a, b)
        assert regressions == 0
        assert "informational" in text
        assert "no regressions" not in text  # no verdict line across configs

    def test_cache_transition_is_reported_not_regressed(self):
        a = entry(stages=(("detect", 0.8, False),))
        b = entry(run_id="bbbbbbbbbbbb", stages=(("detect", 0.01, True),))
        text, regressions = ledger.diff_text(a, b)
        assert regressions == 0
        assert "cache: ran -> hit" in text

    def test_hit_rate_drop_regresses(self):
        a = entry(counters=rates(90, 10))
        b = entry(run_id="bbbbbbbbbbbb", counters=rates(30, 70))
        text, regressions = ledger.diff_text(a, b)
        assert regressions == 1
        assert "hit rate 90.0% -> 30.0%" in text

    def test_hit_rate_needs_minimum_lookups(self):
        a = entry(counters=rates(9, 1))
        b = entry(run_id="bbbbbbbbbbbb", counters=rates(3, 7))
        _, regressions = ledger.diff_text(a, b)
        assert regressions == 0  # 10 lookups < HIT_RATE_MIN_LOOKUPS

    def test_dataset_shape_drift_counts_under_same_config(self):
        a = entry(counters={"crawler.pages[control]": 40, "detect.fp_sites": 12})
        b = entry(run_id="bbbbbbbbbbbb",
                  counters={"crawler.pages[control]": 40, "detect.fp_sites": 11})
        text, regressions = ledger.diff_text(a, b)
        assert regressions == 1
        assert "dataset-shape drift" in text
        assert "detect.fp_sites" in text


class TestRegressText:
    def good(self, run_id="aaa000000000"):
        return entry(
            run_id=run_id,
            stages=(("crawl.control", 2.0, False), ("detect", 0.5, False)),
            counters=rates(80, 20),
        )

    def test_empty_ledger_exits_2(self):
        text, code = ledger.regress_text([])
        assert code == 2
        assert "empty" in text

    def test_no_prior_same_config_exits_2(self):
        text, code = ledger.regress_text([self.good()])
        assert code == 2
        assert "no prior run" in text
        # A prior run under a different config or label doesn't count either.
        other = entry(run_id="ddd000000000", digest="cfg2")
        _, code = ledger.regress_text([other, self.good()])
        assert code == 2
        _, code = ledger.regress_text(
            [entry(run_id="eee000000000", label="crawl"), self.good()]
        )
        assert code == 2

    def test_min_runs_is_enforced(self):
        entries = [self.good("aaa000000000"), self.good("bbb000000000")]
        _, code = ledger.regress_text(entries, min_runs=2)
        assert code == 2
        _, code = ledger.regress_text(entries, min_runs=1)
        assert code == 0

    def test_steady_run_exits_0(self):
        entries = [self.good("aaa000000000"), self.good("bbb000000000"),
                   self.good("ccc000000000")]
        text, code = ledger.regress_text(entries)
        assert code == 0
        assert "no regressions" in text
        assert "median of 2 prior run(s)" in text

    def test_slowdown_past_threshold_exits_1(self):
        slow = entry(
            run_id="fff000000000",
            stages=(("crawl.control", 4.0, False), ("detect", 0.5, False)),
            counters=rates(80, 20),
        )
        entries = [self.good("aaa000000000"), self.good("bbb000000000"), slow]
        text, code = ledger.regress_text(entries, threshold=0.25)
        assert code == 1
        assert "stage.crawl.control.seconds" in text
        assert "REGRESSED" in text
        assert "1 metric(s) regressed" in text

    def test_hit_rate_drop_exits_1(self):
        bad = entry(
            run_id="fff000000000",
            stages=(("crawl.control", 2.0, False),),
            counters=rates(20, 80),
        )
        entries = [self.good("aaa000000000"), bad]
        text, code = ledger.regress_text(entries)
        assert code == 1
        assert "render_cache.glyph.hit_rate" in text

    def test_missing_cache_layer_is_a_failure(self):
        gone = entry(run_id="fff000000000", stages=(("crawl.control", 2.0, False),))
        entries = [self.good("aaa000000000"), gone]
        text, code = ledger.regress_text(entries)
        assert code == 1
        assert "MISSING" in text

    def test_cached_stages_are_skipped(self):
        cached = entry(
            run_id="fff000000000",
            stages=(("crawl.control", 0.01, True), ("detect", 0.5, False)),
            counters=rates(80, 20),
        )
        entries = [self.good("aaa000000000"), cached]
        text, code = ledger.regress_text(entries)
        assert code == 0
        assert "stage.crawl.control.seconds" not in text

    def test_median_resists_one_outlier_baseline(self):
        """One anomalously fast prior run must not fail a normal run."""
        fast = entry(
            run_id="bbb000000000",
            stages=(("crawl.control", 0.5, False), ("detect", 0.5, False)),
            counters=rates(80, 20),
        )
        entries = [
            self.good("aaa000000000"), fast, self.good("ccc000000000"),
            self.good("ddd000000000"),
        ]
        _, code = ledger.regress_text(entries)
        assert code == 0


class TestHistoryCli:
    def populate(self, tmp_path, *entries):
        for e in entries:
            ledger.append_run(tmp_path, e)

    def test_empty_ledger_message_and_exit_2(self, tmp_path, capsys):
        for verb in ("history", "diff", "regress"):
            argv = [verb, str(tmp_path)] + (["-2", "-1"] if verb == "diff" else [])
            assert obs_main(argv) == 2
            err = capsys.readouterr().err
            assert "no run ledger" in err
            assert "REPRO_OBS_TRACE=1" in err  # actionable, not a traceback

    def test_history_lists_runs(self, tmp_path, capsys):
        self.populate(tmp_path, entry(run_id="aaa000000000"),
                      entry(run_id="bbb000000000"))
        assert obs_main(["history", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "aaa000000000" in out and "bbb000000000" in out

    def test_diff_exit_codes(self, tmp_path, capsys):
        self.populate(
            tmp_path,
            entry(run_id="aaa000000000", stages=(("crawl.control", 2.0, False),)),
            entry(run_id="bbb000000000", stages=(("crawl.control", 2.0, False),)),
            entry(run_id="ccc000000000", stages=(("crawl.control", 9.0, False),)),
        )
        assert obs_main(["diff", str(tmp_path), "-3", "-2"]) == 0
        assert "no regressions" in capsys.readouterr().out
        assert obs_main(["diff", str(tmp_path), "prev", "latest"]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # Bad selectors are a usage error (2), not a verdict.
        assert obs_main(["diff", str(tmp_path), "-9", "-1"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_regress_exit_codes(self, tmp_path, capsys):
        self.populate(tmp_path, entry(run_id="aaa000000000",
                                      stages=(("crawl.control", 2.0, False),)))
        assert obs_main(["regress", str(tmp_path)]) == 2
        capsys.readouterr()
        self.populate(tmp_path, entry(run_id="bbb000000000",
                                      stages=(("crawl.control", 2.1, False),)))
        assert obs_main(["regress", str(tmp_path)]) == 0
        capsys.readouterr()
        self.populate(tmp_path, entry(run_id="ccc000000000",
                                      stages=(("crawl.control", 9.0, False),)))
        assert obs_main(["regress", str(tmp_path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        assert obs_main(["regress", str(tmp_path), "--threshold", "5.0"]) == 0
