"""Shared fixtures for the observability tests.

The obs layer keeps process-global state (the tracer's record buffer, the
metrics registry).  ``traced`` gives each test a clean, tracing-enabled
window and restores the ambient configuration afterwards, so these tests
neither see nor leak records across the suite.
"""

import pytest

from repro import obs
from repro.obs.config import ObsConfig


@pytest.fixture
def traced():
    previous = obs.config()
    obs.configure(ObsConfig(trace=True))
    obs.reset()
    yield obs
    obs.reset()
    obs.configure(previous)


@pytest.fixture
def untraced():
    previous = obs.config()
    obs.configure(ObsConfig(trace=False))
    obs.reset()
    yield obs
    obs.reset()
    obs.configure(previous)
