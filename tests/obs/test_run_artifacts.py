"""End-to-end tests for run artifacts and their inspection.

The acceptance criterion from the ISSUE: a sharded, fault-injected study
must produce a manifest + JSONL trace whose ``repro.obs summary`` totals
(pages, retries, stage timings, cache hit rates) agree with
``StudyResult`` / ``CrawlDataset.health`` exactly, and whose exported
trace validates against the Chrome ``trace_event`` format.
"""

import json

import pytest

from repro import obs
from repro.config import StudyScale
from repro.crawler.resilience import RetryPolicy
from repro.net.faults import FaultConfig, FaultyNetwork
from repro.obs.__main__ import main as obs_main
from repro.obs.config import ObsConfig
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.inspect import (
    crawl_labels,
    crawl_totals,
    histogram_rows,
    load_run,
    quarantine_rows,
    slow_text,
    summary_text,
)
from repro.obs.manifest import load_manifest
from repro.obs.recorder import RunRecorder, resolve_run_dir
from repro.webgen import build_world

SCALE = StudyScale(fraction=0.01)


@pytest.fixture(scope="module")
def world():
    return build_world(SCALE)


def faulty(world, rate=0.15, seed=7):
    return FaultyNetwork(world.network, FaultConfig(fault_rate=rate), seed=seed)


def run_traced_study(world, tmp_path, **kwargs):
    from repro.core.pipeline import run_study

    run_dir = tmp_path / "obs"
    result = run_study(
        faulty(world),
        world.all_targets,
        world.vendor_knowledge(),
        easylist_text=world.easylist_text,
        easyprivacy_text=world.easyprivacy_text,
        disconnect=world.disconnect,
        ubo_extra_text=world.ubo_extra_text,
        dns=world.network.dns,
        include_adblock_crawls=False,
        retry_policy=RetryPolicy(max_attempts=3),
        obs_dir=run_dir,
        **kwargs,
    )
    return result, run_dir


class TestStudyArtifacts:
    @pytest.fixture(scope="class")
    def study(self, world, tmp_path_factory):
        previous = obs.config()
        obs.configure(ObsConfig(trace=True))
        obs.reset()
        try:
            result, run_dir = run_traced_study(
                world, tmp_path_factory.mktemp("study"), jobs=1
            )
        finally:
            obs.configure(previous)
        return result, run_dir

    def test_manifest_contents(self, study):
        _, run_dir = study
        manifest = load_manifest(run_dir)
        assert manifest["format"] == "repro-obs-manifest-v1"
        assert manifest["label"] == "study"
        assert manifest["config_digest"]
        assert "crawl.control" in manifest["stage_keys"]
        assert manifest["shard_plan"]["jobs"] == 1
        assert manifest["python"]
        # env capture: every REPRO_* knob, nothing else
        assert all(k.startswith("REPRO_") for k in manifest["env"])

    def test_summary_totals_match_health_exactly(self, study):
        result, run_dir = study
        log = load_run(run_dir)
        health = result.control.health()
        totals = crawl_totals(log, "control")
        assert totals["total"] == health.total
        assert totals["successes"] == health.successes
        assert totals["recovered"] == health.recovered
        assert totals["attempts_histogram"] == health.attempts_histogram
        assert totals["failure_rows"] == tuple(health.failure_rows)
        assert totals["inner_page_failures"] == health.inner_page_failures
        assert totals["total_attempts"] == health.total_attempts

    def test_summary_line_metrics_equal_result_metrics(self, study):
        result, run_dir = study
        log = load_run(run_dir)
        assert log.counters == result.metrics.get("counters", {})

    def test_stage_timings_agree(self, study):
        result, run_dir = study
        log = load_run(run_dir)
        gauges = log.gauges
        for timing in result.stage_timings:
            assert gauges[f"stage.seconds[{timing.name}]"] == timing.seconds

    def test_render_cache_metrics_absorbed(self, study):
        result, run_dir = study
        log = load_run(run_dir)
        for layer, row in result.perf_counters.items():
            if row.get("hits"):
                assert log.counters[f"render_cache.{layer}.hits"] == row["hits"]

    def test_page_spans_cover_every_site(self, study):
        result, run_dir = study
        log = load_run(run_dir)
        domains = [r["attrs"]["domain"] for r in log.spans("crawl.page")]
        assert sorted(domains) == sorted(
            o.domain for o in result.control.observations
        )

    def test_summary_text_renders(self, study):
        result, run_dir = study
        text = summary_text(load_run(run_dir))
        health = result.control.health()
        assert f"{health.successes}/{health.total} sites ok" in text
        assert "injected faults:" in text
        assert "stage" in text

    def test_chrome_trace_exports_and_validates(self, study):
        _, run_dir = study
        log = load_run(run_dir)
        payload = to_chrome_trace(log.records)
        count = validate_chrome_trace(payload)
        assert count == len(log.records) + 1  # + thread_name metadata
        phases = {ev["ph"] for ev in payload["traceEvents"]}
        assert phases >= {"X", "M"}

    def test_cli_summary_slow_and_export(self, study, capsys, tmp_path):
        _, run_dir = study
        assert obs_main(["summary", str(run_dir)]) == 0
        assert "sites ok" in capsys.readouterr().out
        assert obs_main(["slow", str(run_dir), "--top", "3"]) == 0
        assert "attempts" in capsys.readouterr().out
        out = tmp_path / "trace.json"
        assert obs_main(["export-trace", str(run_dir), "-o", str(out)]) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) > 0

    def test_cli_missing_run_exits_2(self, tmp_path, capsys):
        assert obs_main(["summary", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_summary_histogram_percentiles(self, study):
        """Bucket-derived p50/p95/p99 render for every latency histogram."""
        _, run_dir = study
        log = load_run(run_dir)
        rows = histogram_rows(log)
        assert rows, "traced study produced no latency histograms"
        for _name, count, _mean, p50, p95, p99 in rows:
            assert count > 0
            assert p50 <= p95 <= p99
        text = summary_text(log)
        assert "p50" in text and "p95" in text and "p99" in text


class TestDegradedTraceCli:
    """Satellite: an empty or torn-header trace.jsonl gets an actionable
    message and exit 2 from every CLI verb — never a traceback."""

    def make_run_dir(self, tmp_path, trace_text):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "trace.jsonl").write_text(trace_text, encoding="utf-8")
        return run_dir

    def test_empty_trace_file(self, tmp_path, capsys):
        run_dir = self.make_run_dir(tmp_path, "")
        for argv in (
            ["summary", str(run_dir)],
            ["slow", str(run_dir)],
            ["export-trace", str(run_dir)],
        ):
            assert obs_main(argv) == 2
            err = capsys.readouterr().err
            assert "error:" in err
            assert "REPRO_OBS_TRACE=1" in err  # tells the user what to do

    def test_torn_header_only_trace(self, tmp_path, capsys):
        """A run killed mid-header-write leaves one unparseable line; the
        CLI must explain, not render an all-zero summary or crash."""
        run_dir = self.make_run_dir(tmp_path, '{"t": "run", "label": "cra')
        assert obs_main(["summary", str(run_dir)]) == 2
        err = capsys.readouterr().err
        assert "no usable trace records" in err

    def test_whitespace_only_trace(self, tmp_path, capsys):
        run_dir = self.make_run_dir(tmp_path, "\n\n  \n")
        assert obs_main(["summary", str(run_dir)]) == 2
        assert "no usable trace records" in capsys.readouterr().err

    def test_torn_header_with_surviving_records_still_renders(self, tmp_path, capsys):
        """Only a *fully* unusable log is refused: parseable records after
        a torn header still produce a summary."""
        run_dir = self.make_run_dir(
            tmp_path,
            '{"t": "run", "label": "cra\n'
            '{"t": "span", "name": "crawl.shard", "dur": 0.1, "attrs": {}}\n',
        )
        assert obs_main(["summary", str(run_dir)]) == 0
        assert "trace: 1 record(s)" in capsys.readouterr().out


class TestQuarantineInSummary:
    """Satellite: the supervisor's quarantine ledger surfaces in
    ``obs summary`` and matches ``CrawlDataset.health().quarantined``."""

    FP_PAGE = (
        "<html><script>var c=document.createElement('canvas');"
        "c.getContext('2d').fillText('probe',1,1);window.__fp=c.toDataURL();"
        "</script></html>"
    )

    def run_chaos(self, tmp_path):
        from dataclasses import asdict

        from repro.crawler.crawl import CrawlTarget
        from repro.crawler.supervisor import SupervisorConfig, run_supervised_crawl
        from repro.net.server import Network

        net = Network()
        targets = []
        for i in range(6):
            domain = f"site-{i}.example"
            net.server_for(domain).add_resource("/", self.FP_PAGE)
            targets.append(CrawlTarget(domain, i + 1, "top"))
        poison = targets[2].domain
        network = FaultyNetwork(
            net, FaultConfig(worker_crash_domains=(poison,))
        )
        run_dir = tmp_path / "obs"
        recorder = RunRecorder(run_dir, label="crawl").start()
        dataset = run_supervised_crawl(
            network, targets, label="chaos", jobs=2, shards=2,
            checkpoint_dir=tmp_path / "shards",
            config=SupervisorConfig(liveness_deadline_s=30.0, poll_interval_s=0.01),
        )
        recorder.finish(health=asdict(dataset.health()))
        return dataset, load_run(run_dir)

    def test_quarantine_rows_match_health(self, traced, tmp_path):
        dataset, log = self.run_chaos(tmp_path)
        health = dataset.health()
        assert health.quarantined == 1
        count, reasons = quarantine_rows(log)
        assert count == health.quarantined
        assert reasons == [("quarantined:exit:137", 1)]
        # The quarantined site is accounted in the crawl totals too — the
        # parent records counters for sites whose workers died.
        totals = crawl_totals(log, "chaos")
        assert totals["total"] == health.total
        assert totals["failure_rows"] == tuple(health.failure_rows)
        assert totals["attempts_histogram"] == health.attempts_histogram
        text = summary_text(log)
        assert "quarantined sites: 1" in text
        assert "quarantined:exit:137" in text

    def test_unquarantined_run_shows_no_quarantine_section(self, traced, tmp_path):
        recorder = RunRecorder(tmp_path / "run", label="crawl").start()
        obs.inc("crawler.pages[control]", 2)
        obs.inc("crawler.pages_ok[control]", 2)
        recorder.finish()
        assert "quarantined sites" not in summary_text(load_run(tmp_path / "run"))


class TestSampling:
    def test_sampled_run_keeps_summary_exact(self, world, tmp_path):
        previous = obs.config()
        obs.configure(ObsConfig(trace=True, sample=0.25))
        obs.reset()
        try:
            result, run_dir = run_traced_study(world, tmp_path, jobs=1)
        finally:
            obs.configure(previous)
        log = load_run(run_dir)
        health = result.control.health()
        # Far fewer spans than sites survive the sample...
        assert len(log.spans("crawl.page")) < health.total
        # ...but the metrics-backed totals are untouched.
        totals = crawl_totals(log, "control")
        assert totals["total"] == health.total
        assert totals["successes"] == health.successes
        assert totals["attempts_histogram"] == health.attempts_histogram


class TestRecorder:
    def test_resolve_run_dir_precedence(self, traced):
        assert resolve_run_dir("explicit", default="d").name == "explicit"
        obs.configure(ObsConfig(trace=True, run_dir="/tmp/from-env"))
        assert str(resolve_run_dir(None, default="d")) == "/tmp/from-env"
        obs.configure(ObsConfig(trace=True))
        assert resolve_run_dir(None, default="d").name == "d"
        obs.configure(ObsConfig(trace=False))
        assert resolve_run_dir(None, default="d") is None

    def test_recorder_writes_header_records_summary(self, traced, tmp_path):
        recorder = RunRecorder(tmp_path / "run", label="crawl", seed=42).start()
        obs.inc("crawler.pages[x]", 3)
        with obs.span("crawl.shard", shard="shard-0"):
            pass
        recorder.finish(health={"total": 3})
        log = load_run(tmp_path / "run")
        assert log.header["label"] == "crawl"
        assert log.manifest["seed"] == 42
        assert log.counters["crawler.pages[x]"] == 3
        assert log.summary["health"] == {"total": 3}
        assert log.summary["records"] == 1

    def test_torn_trailing_line_is_tolerated(self, traced, tmp_path):
        recorder = RunRecorder(tmp_path / "run", label="crawl").start()
        with obs.span("crawl.shard"):
            pass
        path = recorder.finish()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"t": "event", "name": "tor')  # killed mid-write
        log = load_run(tmp_path / "run")
        assert len(log.records) == 1

    def test_crawl_labels_listing(self, traced, tmp_path):
        recorder = RunRecorder(tmp_path / "run", label="crawl").start()
        obs.inc("crawler.pages[control]")
        obs.inc("crawler.pages[abp]")
        recorder.finish()
        assert crawl_labels(load_run(tmp_path / "run")) == ["abp", "control"]

    def test_slow_text_without_spans(self, traced, tmp_path):
        recorder = RunRecorder(tmp_path / "run", label="crawl").start()
        recorder.finish()
        assert "tracing enabled" in slow_text(load_run(tmp_path / "run"))


class TestCrawlerCliArtifacts:
    def test_crawler_main_writes_obs_dir(self, traced, tmp_path):
        from repro.crawler.__main__ import main as crawler_main

        out = tmp_path / "crawl.jsonl"
        run_dir = tmp_path / "run.obs"
        rc = crawler_main(
            [
                "--scale", "0.004",
                "--out", str(out),
                "--fault-rate", "0.1",
                "--obs-dir", str(run_dir),
            ]
        )
        assert rc == 0
        assert out.exists()
        log = load_run(run_dir)
        from repro.crawler.storage import load_dataset

        health = load_dataset(out).health()
        totals = crawl_totals(log, health.label)
        assert totals["total"] == health.total
        assert totals["successes"] == health.successes
        assert log.summary["health"]["total"] == health.total
        assert log.manifest["seed"] == 20250504
        # checkpoint instrumentation fired once per observation + finalize
        assert log.counters["crawler.checkpoint_writes"] == health.total
        assert log.counters["crawler.checkpoint_finalized"] == 1
