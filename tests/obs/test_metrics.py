"""Unit tests for the unified metrics registry and the perf-counter bridge.

Includes the regression tests the ISSUE calls out for
:func:`repro.perf.diff_snapshots`: layers present only in the newer
snapshot must survive the diff, and a mid-window ``reset()`` must clamp
deltas at zero instead of going negative.
"""

import pickle

from repro import perf
from repro.obs.metrics import (
    DEFAULT_BOUNDARIES,
    Histogram,
    MetricsRegistry,
    absorb_perf,
    diff_snapshots,
)


class TestHistogram:
    def test_buckets_and_sidecars(self):
        hist = Histogram((1.0, 2.0))
        for value in (0.5, 1.5, 3.0, 0.2):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]  # <=1, <=2, overflow
        assert hist.count == 4
        assert hist.total == 5.2
        assert hist.min == 0.2
        assert hist.max == 3.0
        assert abs(hist.mean - 1.3) < 1e-12

    def test_boundary_value_lands_in_lower_bucket(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0]

    def test_json_round_trip(self):
        hist = Histogram()
        for value in (0.003, 0.7, 12.0):
            hist.observe(value)
        clone = Histogram.from_json(hist.to_json())
        assert clone.boundaries == DEFAULT_BOUNDARIES
        assert clone.counts == hist.counts
        assert clone.total == hist.total
        assert (clone.min, clone.max) == (hist.min, hist.max)

    def test_empty_histogram_serializes_zero_extremes(self):
        data = Histogram().to_json()
        assert data["min"] == 0.0 and data["max"] == 0.0


class TestHistogramQuantiles:
    """Bucket-derived p50/p95/p99 — the edge cases the ISSUE pins."""

    def test_empty_histogram_returns_zero(self):
        hist = Histogram((1.0, 2.0))
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.99) == 0.0

    def test_single_value_returns_that_value(self):
        hist = Histogram((1.0, 2.0))
        for _ in range(3):
            hist.observe(1.5)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert hist.quantile(q) == 1.5

    def test_single_bucket_interpolates_between_observed_extremes(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(1.2)
        hist.observe(1.8)
        # The bucket spans (1.0, 2.0] but the estimate never leaves the
        # observed range.
        assert hist.quantile(0.0) == 1.2
        assert hist.quantile(0.5) == 1.5
        assert hist.quantile(1.0) == 1.8

    def test_all_overflow_interpolates_up_to_observed_max(self):
        hist = Histogram((1.0, 2.0))
        for value in (10.0, 20.0, 30.0):
            hist.observe(value)
        assert hist.quantile(1.0) == 30.0  # the only honest upper bound
        assert hist.quantile(0.5) == 20.0  # min..max interpolation
        assert hist.quantile(0.0) == 10.0

    def test_multi_bucket_walks_cumulative_counts(self):
        hist = Histogram((1.0, 2.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 1.5
        assert hist.quantile(1.0) == 3.0
        # Below-first-boundary samples clamp the low edge to the min.
        assert hist.quantile(0.0) == 0.5

    def test_q_is_clamped_to_unit_interval(self):
        hist = Histogram((1.0,))
        hist.observe(0.5)
        hist.observe(2.0)
        assert hist.quantile(-3.0) == hist.quantile(0.0)
        assert hist.quantile(7.0) == hist.quantile(1.0)

    def test_quantiles_are_monotone_in_q(self):
        hist = Histogram()
        for i in range(50):
            hist.observe(0.001 * (i + 1) * 7 % 20.0)
        estimates = [hist.quantile(q / 20.0) for q in range(21)]
        assert estimates == sorted(estimates)
        assert hist.min <= estimates[0] and estimates[-1] <= hist.max

    def test_survives_json_round_trip(self):
        hist = Histogram()
        for value in (0.003, 0.07, 0.7, 12.0):
            hist.observe(value)
        clone = Histogram.from_json(hist.to_json())
        for q in (0.5, 0.95, 0.99):
            assert clone.quantile(q) == hist.quantile(q)


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        reg.gauge("g", 5.0)
        reg.gauge("g", 3.0)
        assert reg.counter("a") == 3
        assert reg.snapshot()["gauges"]["g"] == 3.0  # last write wins in-process

    def test_counters_prefix_filter(self):
        reg = MetricsRegistry()
        reg.inc("crawler.pages[control]")
        reg.inc("net.requests")
        assert set(reg.counters("crawler.")) == {"crawler.pages[control]"}

    def test_snapshot_is_picklable_and_detached(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.observe("h", 0.5)
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        reg.inc("c", 10)
        assert snap["counters"]["c"] == 2

    def test_merge_sums_counters_and_maxes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        a.gauge("g", 10.0)
        b.inc("c", 3)
        b.inc("only_b")
        b.gauge("g", 7.0)
        a.merge(b.snapshot())
        assert a.counter("c") == 5
        assert a.counter("only_b") == 1
        assert a.snapshot()["gauges"]["g"] == 10.0  # max across merges

    def test_merge_sums_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 0.3)
        b.observe("h", 40.0)
        b.observe("h", 0.004)
        a.merge(b.snapshot())
        hist = a.histogram("h")
        assert hist.count == 3
        assert hist.min == 0.004
        assert hist.max == 40.0
        assert sum(hist.counts) == 3

    def test_merge_adopts_unknown_histogram(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.observe("h", 1.0)
        a.merge(b.snapshot())
        assert a.histogram("h").count == 1

    def test_merge_boundary_mismatch_keeps_totals_exact(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1.0, boundaries=(1.0,))
        b.observe("h", 2.0, boundaries=(5.0,))
        a.merge(b.snapshot())
        hist = a.histogram("h")
        assert hist.count == 2
        assert hist.total == 3.0


class TestDiffSnapshots:
    def test_counters_diff_and_drop_idle(self):
        reg = MetricsRegistry()
        reg.inc("a", 5)
        reg.inc("idle", 2)
        before = reg.snapshot()
        reg.inc("a", 3)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["counters"] == {"a": 3}

    def test_new_names_survive(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.inc("fresh", 4)
        reg.observe("h", 0.1)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["counters"]["fresh"] == 4
        assert delta["histograms"]["h"]["count"] == 1

    def test_mid_window_reset_clamps_to_zero(self):
        reg = MetricsRegistry()
        reg.inc("a", 10)
        reg.observe("h", 1.0)
        before = reg.snapshot()
        reg.reset()
        reg.inc("a", 2)
        delta = diff_snapshots(before, reg.snapshot())
        # 2 - 10 would be negative; the window reports no activity instead.
        assert "a" not in delta["counters"]
        assert "h" not in delta["histograms"]

    def test_gauges_carry_after_level(self):
        reg = MetricsRegistry()
        reg.gauge("g", 100.0)
        before = reg.snapshot()
        reg.gauge("g", 40.0)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["gauges"]["g"] == 40.0

    def test_delta_merges_back_exactly(self):
        """worker pattern: parent.merge(diff(before, after)) == exactly-once."""
        worker = MetricsRegistry()
        worker.inc("c", 7)  # residue of an earlier task on this worker
        before = worker.snapshot()
        worker.inc("c", 5)
        worker.observe("h", 0.2)
        parent = MetricsRegistry()
        parent.inc("c", 1)
        parent.merge(diff_snapshots(before, worker.snapshot()))
        assert parent.counter("c") == 6  # 1 + 5, never the residue


class TestPerfDiffRegressions:
    """ISSUE satellite: repro.perf.diff_snapshots edge cases."""

    def test_layer_only_in_newer_snapshot_is_kept(self):
        counters = perf.PerfCounters()
        before = counters.snapshot()
        counters.hit("glyph_atlas")
        counters.miss("glyph_atlas", 0.5)
        delta = perf.diff_snapshots(before, counters.snapshot())
        assert "glyph_atlas" in delta
        assert delta["glyph_atlas"]["hits"] == 1
        assert delta["glyph_atlas"]["misses"] == 1

    def test_mid_window_reset_clamps_to_zero(self):
        counters = perf.PerfCounters()
        counters.hit("render_cache")
        counters.hit("render_cache")
        counters.miss("render_cache", 1.0)
        before = counters.snapshot()
        counters.reset()
        counters.miss("render_cache", 0.25)
        counters.miss("render_cache", 0.25)
        delta = perf.diff_snapshots(before, counters.snapshot())
        row = delta["render_cache"]
        assert row["hits"] == 0.0  # clamped, not -2
        assert row["misses"] == 1.0  # 2 - 1, post-reset activity above baseline
        assert row["hit_seconds"] == 0.0
        assert all(v >= 0.0 for v in row.values())

    def test_mid_window_reset_below_baseline_drops_layer(self):
        """Clamping can hide a whole layer; it must never go negative."""
        counters = perf.PerfCounters()
        counters.hit("render_cache")
        counters.miss("render_cache", 1.0)
        before = counters.snapshot()
        counters.reset()
        counters.miss("render_cache", 0.1)  # still below the old cumulative
        delta = perf.diff_snapshots(before, counters.snapshot())
        assert delta == {}

    def test_idle_layers_dropped(self):
        counters = perf.PerfCounters()
        counters.hit("encode")
        snap = counters.snapshot()
        assert perf.diff_snapshots(snap, snap) == {}

    def test_residency_reports_after_level(self):
        counters = perf.PerfCounters()
        counters.set_residency("encode", 5, 1000)
        before = counters.snapshot()
        counters.miss("encode", 0.1)
        counters.set_residency("encode", 9, 4096)
        delta = perf.diff_snapshots(before, counters.snapshot())
        assert delta["encode"]["entries"] == 9.0
        assert delta["encode"]["bytes"] == 4096.0


class TestAbsorbPerf:
    def test_layers_become_counters_and_gauges(self):
        counters = perf.PerfCounters()
        counters.hit("glyph_atlas", 0.01)
        counters.miss("glyph_atlas", 0.2)
        counters.set_residency("glyph_atlas", 3, 512)
        reg = MetricsRegistry()
        absorb_perf(reg, counters.snapshot())
        assert reg.counter("render_cache.glyph_atlas.hits") == 1
        assert reg.counter("render_cache.glyph_atlas.misses") == 1
        assert reg.snapshot()["gauges"]["render_cache.glyph_atlas.bytes"] == 512.0

    def test_zero_fields_are_skipped(self):
        counters = perf.PerfCounters()
        counters.hit("encode")
        reg = MetricsRegistry()
        absorb_perf(reg, counters.snapshot())
        assert "render_cache.encode.misses" not in reg.counters()
