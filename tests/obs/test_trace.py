"""Unit tests for the tracer: spans, events, sampling, caps, propagation."""

import os

import pytest

from repro import obs
from repro.obs.config import ObsConfig
from repro.obs.trace import NOOP_SPAN, SAMPLED_NAMES, Tracer, _keep


class TestSpans:
    def test_span_records_duration_and_attrs(self, traced):
        with obs.span("stage.detect", key="abc") as span:
            span.set_attr("cached", False)
        records = obs.TRACE.records()
        assert len(records) == 1
        record = records[0]
        assert record["t"] == "span"
        assert record["name"] == "stage.detect"
        assert record["attrs"] == {"key": "abc", "cached": False}
        assert record["status"] == "ok"
        assert record["dur"] >= 0.0
        assert record["pid"] == os.getpid()
        assert record["tid"] == "main"

    def test_nesting_links_parents(self, traced):
        with obs.span("study.run") as outer:
            with obs.span("stage.crawl") as inner:
                assert inner.parent_id == outer.span_id
        records = {r["name"]: r for r in obs.TRACE.records()}
        assert records["stage.crawl"]["parent"] == records["study.run"]["id"]
        assert records["study.run"]["parent"] is None

    def test_exception_marks_error_status(self, traced):
        with pytest.raises(ValueError):
            with obs.span("stage.detect"):
                raise ValueError("boom")
        record = obs.TRACE.records()[0]
        assert record["status"] == "error"
        assert "ValueError" in record["attrs"]["status_detail"]
        # The stack unwound: the next span is a root again.
        with obs.span("next") as span:
            assert span.parent_id is None

    def test_events_attach_to_enclosing_span(self, traced):
        with obs.span("crawl.shard") as span:
            obs.event("checkpoint.finalize", path="x")
        event = obs.TRACE.records()[0]
        assert event["t"] == "event"
        assert event["parent"] == span.span_id


class TestDisabled:
    def test_span_is_shared_noop(self, untraced):
        span = obs.span("crawl.page", domain="a.example")
        assert span is NOOP_SPAN
        assert not span.recording
        with span as ctx:
            ctx.set_attr("ignored", 1)
            ctx.set_status("error")
        assert obs.TRACE.records() == []

    def test_event_is_dropped(self, untraced):
        obs.event("crawl.retry", sample_key="a.example", attempt=1)
        assert obs.TRACE.records() == []

    def test_metrics_stay_on(self, untraced):
        obs.inc("crawler.pages[control]")
        assert obs.METRICS.counter("crawler.pages[control]") == 1


class TestSampling:
    def test_keep_is_deterministic_and_roughly_uniform(self):
        kept = [_keep(0.25, f"site{i}.example") for i in range(4000)]
        assert kept == [_keep(0.25, f"site{i}.example") for i in range(4000)]
        fraction = sum(kept) / len(kept)
        assert 0.2 < fraction < 0.3

    def test_page_spans_sampled_by_domain(self):
        tracer = Tracer(ObsConfig(trace=True, sample=0.5))
        for i in range(200):
            with tracer.span("crawl.page", domain=f"s{i}.example"):
                pass
        kept = len(tracer.records())
        assert 0 < kept < 200
        expected = sum(_keep(0.5, f"s{i}.example") for i in range(200))
        assert kept == expected

    def test_structural_spans_never_sampled(self):
        tracer = Tracer(ObsConfig(trace=True, sample=0.0))
        with tracer.span("study.run"):
            with tracer.span("stage.crawl"):
                pass
        assert len(tracer.records()) == 2
        assert "study.run" not in SAMPLED_NAMES

    def test_sampled_event_names(self):
        tracer = Tracer(ObsConfig(trace=True, sample=0.0))
        tracer.event("crawl.retry", sample_key="x.example")
        tracer.event("checkpoint.finalize", path="y")
        names = [r["name"] for r in tracer.records()]
        assert names == ["checkpoint.finalize"]


class TestEventCap:
    def test_cap_counts_drops(self):
        tracer = Tracer(ObsConfig(trace=True, max_events=3))
        for i in range(10):
            tracer.event("checkpoint.finalize", n=i)
        assert len(tracer.records()) == 3
        assert tracer.dropped == 7


class TestPropagation:
    def test_drain_then_ingest_is_exactly_once(self):
        worker = Tracer(ObsConfig(trace=True))
        worker.tid = "shard-3"
        with worker.span("crawl.shard", shard="shard-3"):
            pass
        shipped = worker.drain()
        assert worker.records() == []  # drained, not copied

        parent = Tracer(ObsConfig(trace=True))
        parent.ingest(shipped)
        parent.ingest([])  # idempotent on empty
        records = parent.records()
        assert len(records) == 1
        assert records[0]["tid"] == "shard-3"

    def test_worker_payload_ships_metric_deltas(self, traced):
        obs.inc("crawler.pages[control]", 7)  # earlier-task residue
        before = obs.METRICS.snapshot()
        obs.inc("crawler.pages[control]", 2)
        with obs.span("crawl.shard"):
            pass
        payload = obs.worker_payload(before)
        assert payload["metrics"]["counters"] == {"crawler.pages[control]": 2}
        assert len(payload["spans"]) == 1
        assert obs.TRACE.records() == []  # drained into the payload

        obs.reset()
        obs.ingest_worker(payload)
        assert obs.METRICS.counter("crawler.pages[control]") == 2
        assert len(obs.TRACE.records()) == 1


class TestConfig:
    def test_from_env_knobs(self):
        env = {
            "REPRO_OBS_TRACE": "1",
            "REPRO_OBS_SAMPLE": "0.25",
            "REPRO_OBS_MAX_EVENTS": "123",
            "REPRO_OBS_DIR": "/tmp/run",
        }
        cfg = ObsConfig.from_env(env)
        assert cfg.trace is True
        assert cfg.sample == 0.25
        assert cfg.max_events == 123
        assert cfg.run_dir == "/tmp/run"

    def test_defaults_are_off(self):
        cfg = ObsConfig.from_env({})
        assert cfg.trace is False
        assert cfg.sample == 1.0
        assert cfg.run_dir is None
