"""Tests for the sampling profiler (repro.obs.profiler).

The two properties the ISSUE pins:

* **Exactly transparent** — a supervised ``jobs=4`` fault-injected crawl
  with profiling on produces a byte-identical dataset (and equal health /
  ``StudyResult``) to the same crawl with profiling off.
* **Exactly-once sample shipping** — worker sample tables drain per task
  over the ``worker_payload``/``ingest_worker`` channel, so pooled workers
  never re-ship earlier tasks' samples and fork-inherited parent tables
  are cleared before a child ever records.

Plus the attribution criterion: in a profiled seeded study ≥90% of samples
carry a context tag, and the by-stage sampled seconds agree (loosely — it
is a sampler) with ``StudyResult.stage_timings``.
"""

import json
import threading
import time

import pytest

from repro import obs, perf
from repro.config import StudyScale
from repro.core.pipeline import run_study
from repro.crawler.crawl import CrawlTarget
from repro.crawler.resilience import RetryPolicy
from repro.crawler.shards import _crawl_shard_worker
from repro.crawler.storage import save_dataset
from repro.crawler.supervisor import SupervisorConfig, run_supervised_crawl
from repro.net.faults import FaultConfig, FaultyNetwork
from repro.net.server import Network
from repro.obs import profiler
from repro.obs.config import ObsConfig
from repro.obs.export import validate_chrome_trace
from repro.obs.ledger import load_ledger
from repro.webgen import build_world

FP_SCRIPT = """
var c = document.createElement('canvas');
c.width = 220; c.height = 40;
var g = c.getContext('2d');
g.font = '13px Arial';
g.fillText('profiler probe', 3, 20);
window.__fp = c.toDataURL();
"""


def make_network(n=8):
    net = Network()
    for i in range(n):
        server = net.server_for(f"site-{i}.example")
        server.add_resource(
            "/", f"<html><title>{i}</title><script>{FP_SCRIPT}</script></html>"
        )
    return net


def make_targets(n=8):
    return [
        CrawlTarget(f"site-{i}.example", i + 1, "top" if i % 2 == 0 else "tail")
        for i in range(n)
    ]


def crashy_network(n, *poison):
    return FaultyNetwork(
        make_network(n), FaultConfig(worker_crash_domains=tuple(poison))
    )


def fast_config(**overrides):
    defaults = dict(liveness_deadline_s=30.0, poll_interval_s=0.01)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def make_snapshot(rows, dropped=0):
    """Snapshot from ((ctx, stack, count, seconds), ...) rows."""
    table = profiler.SampleTable()
    for ctx, stack, count, seconds in rows:
        table.entries[(tuple(ctx), tuple(stack))] = [count, seconds]
    table.dropped = dropped
    return table.snapshot()


@pytest.fixture(scope="module")
def world():
    return build_world(StudyScale(fraction=0.01))


@pytest.fixture
def clean_profiler():
    profiler.reset()
    yield profiler
    profiler.reset()


class TestSampleTable:
    def test_record_aggregates_by_key(self):
        table = profiler.SampleTable()
        key = ((("stage", "detect"),), ("a:f", "b:g"))
        table.record(*key, 0.01)
        table.record(*key, 0.01)
        table.record((), ("a:f",), 0.01)
        assert table.entries[key] == [2, pytest.approx(0.02)]
        assert len(table.entries) == 2

    def test_snapshot_merge_roundtrip(self):
        table = profiler.SampleTable()
        table.record((("site", "a.example"),), ("m:f",), 0.25)
        table.record((), ("m:g",), 0.5)
        other = profiler.SampleTable()
        other.merge(table.snapshot())
        assert other.snapshot() == table.snapshot()

    def test_merge_is_additive(self):
        snap = make_snapshot([((("site", "a"),), ("m:f",), 3, 0.3)])
        table = profiler.SampleTable()
        table.merge(snap)
        table.merge(snap)
        ((key, row),) = table.entries.items()
        assert key == ((("site", "a"),), ("m:f",))
        assert row == [6, pytest.approx(0.6)]

    def test_merge_none_and_empty_are_noops(self):
        table = profiler.SampleTable()
        table.merge(None)
        table.merge({})
        assert table.entries == {} and table.dropped == 0

    def test_key_cap_counts_drops_instead_of_growing(self, monkeypatch):
        monkeypatch.setattr(profiler, "MAX_TABLE_KEYS", 2)
        table = profiler.SampleTable()
        for i in range(5):
            table.record((), (f"m:f{i}",), 0.1)
        assert len(table.entries) == 2
        assert table.dropped == 3
        # The drop count survives snapshot/merge.
        other = profiler.SampleTable()
        other.merge(table.snapshot())
        assert other.dropped == 3


class TestContextTags:
    def test_context_manager_pushes_and_pops(self, clean_profiler):
        ident = threading.get_ident()
        with profiler.context("site", "a.example"):
            with profiler.context("script", "https://v.example/fp.js"):
                assert profiler._CONTEXTS[ident] == [
                    ("site", "a.example"),
                    ("script", "https://v.example/fp.js"),
                ]
            assert profiler._CONTEXTS[ident] == [("site", "a.example")]
        assert profiler._CONTEXTS[ident] == []

    def test_span_context_mapping(self):
        assert profiler.span_context("stage.crawl.control", {}) == (
            "stage", "crawl.control",
        )
        assert profiler.span_context("crawl.page", {"domain": "a.com"}) == (
            "site", "a.com",
        )
        assert profiler.span_context("crawl.shard", {"shard": "shard-3"}) == (
            "shard", "shard-3",
        )
        assert profiler.span_context("study.run", {}) == ("study", "run")
        assert profiler.span_context("crawl.retry", {}) is None
        assert profiler.span_context("reduce.block", {"index": 0}) is None

    def test_obs_span_tags_thread_when_profiler_active(self, untraced, monkeypatch):
        monkeypatch.setattr(profiler, "ACTIVE", True)
        ident = threading.get_ident()
        with obs.span("crawl.page", domain="x.example"):
            assert profiler._CONTEXTS[ident][-1] == ("site", "x.example")
        assert not profiler._CONTEXTS[ident]
        # Spans with no cost identity stay untagged.
        with obs.span("crawl.retry", domain="x.example"):
            assert not profiler._CONTEXTS[ident]

    def test_obs_span_is_plain_when_profiler_inactive(self, traced):
        assert profiler.ACTIVE is False
        span = obs.span("crawl.page", domain="x.example")
        assert not isinstance(span, profiler._TaggedSpan)

    def test_tagged_span_still_records_trace(self, traced, monkeypatch):
        monkeypatch.setattr(profiler, "ACTIVE", True)
        with obs.span("crawl.page", domain="x.example") as span:
            span.set_attr("attempts", 2)
        (record,) = obs.TRACE.records()
        assert record["name"] == "crawl.page"
        assert record["attrs"]["domain"] == "x.example"
        assert record["attrs"]["attempts"] == 2


class TestSamplerLifecycle:
    def test_maybe_start_respects_config(self, clean_profiler):
        assert profiler.maybe_start(ObsConfig(profile=False)) is False
        assert profiler.ACTIVE is False
        assert profiler.maybe_start(ObsConfig(profile=True, profile_hz=499.0)) is True
        assert profiler.ACTIVE is True
        first = profiler._SAMPLER
        # Same hz: the live sampler is reused, not churned.
        assert profiler.maybe_start(ObsConfig(profile=True, profile_hz=499.0)) is True
        assert profiler._SAMPLER is first
        # Profile off again: stops.
        assert profiler.maybe_start(ObsConfig(profile=False)) is False
        assert profiler.ACTIVE is False

    def test_sampler_collects_tagged_samples(self, clean_profiler):
        profiler.maybe_start(ObsConfig(profile=True, profile_hz=499.0))
        deadline = time.time() + 5.0
        tag = (("site", "busy.example"),)
        with profiler.context(*tag[0]):
            while (
                # .copy() is atomic under the GIL; plain iteration could race
                # the sampler thread's inserts.
                not any(ctx == tag for ctx, _ in profiler.TABLE.entries.copy())
                and time.time() < deadline
            ):
                sum(i * i for i in range(2000))
        profiler.stop()
        snapshot = profiler.drain()
        assert snapshot, "sampler collected nothing in 5s at 499 Hz"
        rollup = profiler.rollup(snapshot)
        assert rollup["samples"] >= 1
        assert rollup["seconds"] > 0
        sites = {row["name"] for row in rollup["by_site"]}
        assert "busy.example" in sites

    def test_drain_takes_and_clears(self, clean_profiler):
        assert profiler.drain() is None
        profiler.TABLE.record((), ("m:f",), 0.1)
        snapshot = profiler.drain()
        assert snapshot["entries"]
        assert profiler.drain() is None

    def test_forked_child_discards_inherited_table(self, clean_profiler, monkeypatch):
        """A forked worker inherits the parent's table; maybe_start must
        clear it so parent samples are never shipped home twice."""
        profiler.TABLE.record((("site", "parent.example"),), ("m:f",), 1.0)
        monkeypatch.setattr(profiler, "_PID", -1)  # simulate post-fork pid change
        assert profiler.maybe_start(ObsConfig(profile=True, profile_hz=499.0)) is True
        assert profiler.TABLE.entries == {}

    def test_forked_child_with_profile_off_also_resets(self, clean_profiler, monkeypatch):
        profiler.TABLE.record((), ("m:f",), 1.0)
        monkeypatch.setattr(profiler, "_PID", -1)
        assert profiler.maybe_start(ObsConfig(profile=False)) is False
        assert profiler.TABLE.entries == {}


class TestExports:
    ROWS = [
        (
            (("stage", "crawl.control"), ("site", "a.example")),
            ("repro.crawler.crawl:visit", "repro.canvas.surface:fill_text"),
            8,
            0.8,
        ),
        (
            (("stage", "crawl.control"), ("site", "a.example"),
             ("script", "https://v.example/fp.js")),
            ("repro.js.interpreter:run",),
            4,
            0.4,
        ),
        ((("stage", "detect"),), ("repro.js.parser:parse",), 2, 0.2),
        ((), ("test_profiler:idle",), 1, 0.1),
    ]

    def test_rollup_tables(self):
        rollup = profiler.rollup(make_snapshot(self.ROWS, dropped=3))
        assert rollup["samples"] == 15
        assert rollup["seconds"] == pytest.approx(1.5)
        assert rollup["dropped"] == 3
        assert rollup["unattributed_samples"] == 1
        assert rollup["by_site"] == [
            {"name": "a.example", "samples": 12, "seconds": pytest.approx(1.2)}
        ]
        assert rollup["by_script"] == [
            {"name": "https://v.example/fp.js", "samples": 4, "seconds": pytest.approx(0.4)}
        ]
        stages = {row["name"]: row["samples"] for row in rollup["by_stage"]}
        assert stages == {"crawl.control": 12, "detect": 2}
        subsystems = {row["name"]: row["samples"] for row in rollup["by_subsystem"]}
        # Leaf-ward classification: the crawl frame ending in a canvas
        # helper counts as render time, parsing as js.compile.
        assert subsystems == {"render": 8, "js.exec": 4, "js.compile": 2, "other": 1}

    def test_rollup_of_nothing(self):
        rollup = profiler.rollup(None)
        assert rollup["samples"] == 0
        assert rollup["by_site"] == []

    def test_collapsed_stacks_format(self):
        lines = profiler.collapsed_stacks(make_snapshot(self.ROWS))
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        by_root = {}
        for line in lines:
            frames, count = line.rsplit(" ", 1)
            by_root.setdefault(frames.split(";")[0], []).append(int(count))
        # Context tags are synthetic root frames; untagged samples root at
        # <unattributed> so the attribution rate is visible in the graph.
        assert set(by_root) == {"stage:crawl.control", "stage:detect", "<unattributed>"}
        assert sum(by_root["stage:crawl.control"]) == 12
        deep = next(line for line in lines if "script:" in line)
        assert "site:a.example;script:" in deep
        assert deep.endswith("repro.js.interpreter:run 4")

    def test_chrome_trace_validates(self):
        payload = profiler.chrome_trace(make_snapshot(self.ROWS))
        assert validate_chrome_trace(payload) == len(payload["traceEvents"])
        leaves = [
            ev for ev in payload["traceEvents"]
            if ev["ph"] == "X" and ev["args"].get("samples")
        ]
        assert sum(ev["args"]["samples"] for ev in leaves) == 15

    def test_empty_exports(self):
        assert profiler.collapsed_stacks(None) == []
        assert validate_chrome_trace(profiler.chrome_trace(None)) == 1  # metadata only


class TestTransparency:
    """Satellite (d): a supervised jobs=4 fault-injected crawl is
    byte-identical with profiling on vs off."""

    JOBS = 4

    def run_chaos(self, tmp_path, name, profile):
        previous = obs.config()
        obs.configure(ObsConfig(profile=profile, profile_hz=97.0))
        obs.reset()
        targets = make_targets(8)
        poison = targets[3].domain
        try:
            if profile:
                obs.profiler.maybe_start(obs.config())
            dataset = run_supervised_crawl(
                crashy_network(8, poison), targets, label="chaos",
                jobs=self.JOBS, shards=2,
                checkpoint_dir=tmp_path / f"{name}.shards", config=fast_config(),
            )
        finally:
            obs.reset()
            obs.configure(previous)
        path = tmp_path / f"{name}.jsonl"
        save_dataset(dataset, path)
        return dataset, path

    def test_profiled_chaos_run_is_byte_identical(self, tmp_path):
        plain, plain_path = self.run_chaos(tmp_path, "off", profile=False)
        profiled, profiled_path = self.run_chaos(tmp_path, "on", profile=True)
        assert profiled_path.read_bytes() == plain_path.read_bytes()
        assert profiled.observations == plain.observations
        assert profiled.health() == plain.health()
        assert profiled.quarantined_sites() == plain.quarantined_sites()
        assert plain.health().quarantined == 1  # the fault actually fired


class TestExactlyOnceShipping:
    """Satellite (d), second half: sample tables drain per task — pooled
    workers and respawns never double-count (mirrors
    tests/obs/test_cross_process.py's delta semantics)."""

    def worker_args(self, world, profile_hz=499.0):
        shard = list(world.all_targets[:4])
        return (
            world.network, shard, None, "control", RetryPolicy(max_attempts=3),
            None, (), None, False, perf.current_config(),
            ObsConfig(trace=True, profile=True, profile_hz=profile_hz),
            "shard-0", None, None, None,
        )

    def has_sentinel(self, snapshot):
        return any(
            stack == ["sentinel:frame"]
            for _, stack, _, _ in (snapshot or {}).get("entries", ())
        )

    def test_worker_ships_profile_delta_per_task(self, world, untraced):
        """A pooled worker running two tasks back to back must not re-ship
        the first task's samples: a sentinel sample recorded before task 1
        appears in task 1's payload and never again."""
        payload = self.worker_args(world)
        profiler.TABLE.record((("site", "sentinel.example"),), ("sentinel:frame",), 1.0)
        _, _, obs_payload_1, _ = _crawl_shard_worker(payload)
        _, _, obs_payload_2, _ = _crawl_shard_worker(payload)
        assert self.has_sentinel(obs_payload_1["profile"])
        assert not self.has_sentinel(obs_payload_2["profile"])
        # Nothing is left behind to leak into a third task either.
        assert not self.has_sentinel(profiler.drain())

    def test_worker_payload_carries_none_when_no_samples(self, untraced):
        obs.configure(ObsConfig(trace=True))
        payload = obs.worker_payload(obs.METRICS.snapshot())
        assert payload["profile"] is None

    def test_ingest_worker_merges_exactly_once(self, untraced):
        snap_1 = make_snapshot([((("site", "a"),), ("m:f",), 2, 0.2)])
        snap_2 = make_snapshot([((("site", "a"),), ("m:f",), 3, 0.3)])
        obs.configure(ObsConfig(trace=True))
        base = obs.worker_payload(obs.METRICS.snapshot())
        obs.ingest_worker({**base, "profile": snap_1})
        obs.ingest_worker({**base, "profile": snap_2})
        obs.ingest_worker(None)  # a skipped worker ships nothing
        merged = profiler.drain()
        ((_, stack, count, seconds),) = merged["entries"]
        assert stack == ["m:f"]
        assert count == 5  # 2 + 3: two respawn windows merge additively
        assert seconds == pytest.approx(0.5)


class TestStudyProfile:
    """A profiled seeded study: attribution rate, stage agreement, and the
    on-disk artifacts (collapsed stacks, Chrome trace, ledger rollup)."""

    HZ = 97.0

    def run_seeded_study(self, world, run_dir=None, profile=True):
        previous = obs.config()
        obs.configure(ObsConfig(trace=True, profile=profile, profile_hz=self.HZ))
        obs.reset()
        try:
            result = run_study(
                world.network,
                world.all_targets,
                world.vendor_knowledge(),
                easylist_text=world.easylist_text,
                easyprivacy_text=world.easyprivacy_text,
                disconnect=world.disconnect,
                ubo_extra_text=world.ubo_extra_text,
                dns=world.network.dns,
                include_adblock_crawls=False,
                jobs=1,
                obs_dir=run_dir,
            )
        finally:
            obs.reset()
            obs.configure(previous)
        return result

    @pytest.fixture(scope="class")
    def profiled(self, world, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("profiled") / "obs"
        result = self.run_seeded_study(world, run_dir=run_dir)
        return result, run_dir

    def test_study_result_is_identical_with_profiling_off(self, world, profiled):
        result, _ = profiled
        plain = self.run_seeded_study(world, profile=False)
        assert plain.profile == {}
        assert result == plain  # science fields only; profile is compare=False

    def test_at_least_90_percent_of_samples_are_attributed(self, profiled):
        result, _ = profiled
        rollup = result.profile
        assert rollup["samples"] > 0, "no samples in a ~2s study at 97 Hz"
        assert rollup["unattributed_samples"] <= 0.1 * rollup["samples"]

    def test_by_stage_agrees_with_stage_timings(self, profiled):
        result, _ = profiled
        timed = {t.name: t.seconds for t in result.stage_timings if not t.cached}
        sampled = {row["name"]: row["seconds"] for row in result.profile["by_stage"]}
        # Every sampled stage is a real stage of this run.
        assert set(sampled) <= set(timed)
        # Totals agree loosely: it is a sampler, but it must not invent or
        # lose wall time wholesale (jobs=1, so stage spans cover the run).
        sampled_total = sum(sampled.values())
        timed_total = sum(timed.values())
        assert sampled_total == pytest.approx(timed_total, rel=0.5, abs=0.5)
        # The top sampled stage is among the genuinely slow stages.
        top_stage = max(sampled, key=sampled.get)
        slowest = sorted(timed, key=timed.get, reverse=True)[:3]
        assert top_stage in slowest

    def test_vendor_scripts_are_attributed(self, profiled):
        result, _ = profiled
        scripts = [row["name"] for row in result.profile["by_script"]]
        assert scripts, "no vendor-script self-time attributed"
        assert all(s.startswith("http") for s in scripts)

    def test_collapsed_stack_artifact(self, profiled):
        result, run_dir = profiled
        lines = (run_dir / "profile.collapsed").read_text().splitlines()
        total = attributed = 0
        for line in lines:
            frames, count = line.rsplit(" ", 1)
            total += int(count)
            if not frames.startswith("<unattributed>"):
                attributed += int(count)
        assert total == result.profile["samples"]
        assert attributed >= 0.9 * total

    def test_chrome_trace_artifact_validates(self, profiled):
        _, run_dir = profiled
        payload = json.loads((run_dir / "profile.trace.json").read_text())
        assert validate_chrome_trace(payload) == len(payload["traceEvents"])

    def test_rollup_lands_in_summary_line_and_ledger(self, profiled):
        result, run_dir = profiled
        from repro.obs.inspect import load_run

        log = load_run(run_dir)
        assert log.summary["profile"]["samples"] == result.profile["samples"]
        (entry,) = load_ledger(run_dir)
        assert entry["profile"]["samples"] == result.profile["samples"]
        assert entry["config_digest"]
        assert [s["name"] for s in entry["stages"]] == [
            t.name for t in result.stage_timings
        ]

    def test_cli_summary_renders_profile_section(self, profiled, capsys):
        from repro.obs.__main__ import main as obs_main

        _, run_dir = profiled
        assert obs_main(["summary", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "self-time by stage" in out
        assert "% attributed" in out
