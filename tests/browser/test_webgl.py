"""Tests for the WebGL parameter-probe surface."""

from repro.browser import Browser, BrowserProfile
from repro.canvas.device import APPLE_M1, INTEL_UBUNTU, device_fleet
from repro.net import Network

PROBE = """
var c = document.createElement('canvas');
var gl = c.getContext('webgl');
var ext = gl.getExtension('WEBGL_debug_renderer_info');
console.log(gl.getParameter(ext.UNMASKED_VENDOR_WEBGL));
console.log(gl.getParameter(ext.UNMASKED_RENDERER_WEBGL));
console.log(gl.getParameter(gl.VERSION));
console.log(gl.getSupportedExtensions().includes('WEBGL_debug_renderer_info'));
"""


def probe(device):
    net = Network()
    net.server_for("gl.example").add_resource("/", f"<script>{PROBE}</script>")
    page = Browser(net, BrowserProfile(device=device)).load("https://gl.example/")
    assert not page.script_errors, page.script_errors
    return page


class TestWebGL:
    def test_intel_identity(self):
        page = probe(INTEL_UBUNTU)
        assert page.console[0] == "Intel Open Source Technology Center"
        assert "UHD Graphics" in page.console[1]
        assert page.console[2] == "WebGL 1.0"
        assert page.console[3] == "true"

    def test_m1_identity(self):
        page = probe(APPLE_M1)
        assert page.console[0] == "Apple Inc."
        assert page.console[1] == "Apple M1"

    def test_synthetic_devices_distinct(self):
        fleet = device_fleet(4)
        renderers = [probe(d).console[1] for d in fleet]
        assert len(set(renderers)) == 4

    def test_getcontext_webgl_recorded(self):
        page = probe(INTEL_UBUNTU)
        calls = [c for c in page.instrument.calls if c.method == "getContext"]
        assert calls and calls[0].args == ("webgl",)
        assert calls[0].retval == "WebGLRenderingContext"

    def test_unknown_extension_null(self):
        net = Network()
        net.server_for("x.example").add_resource(
            "/",
            "<script>var gl = document.createElement('canvas').getContext('webgl');"
            "console.log(gl.getExtension('NOPE') === null);</script>",
        )
        page = Browser(net).load("https://x.example/")
        assert page.console == ["true"]
