"""Unit tests for privacy filters, instrumentation, profiles and extensions."""

import numpy as np

from repro.browser.extensions import AdBlockerExtension
from repro.browser.instrumentation import CanvasInstrument, VirtualClock
from repro.browser.privacy import CanvasRandomization, RandomizationState, make_extraction_filter
from repro.browser.profile import BrowserProfile
from repro.blocklists.matcher import RuleMatcher
from repro.net.http import Request, ResourceType
from repro.net.url import URL


def drawn_pixels(h=20, w=20, value=180):
    px = np.zeros((h, w, 4), dtype=np.uint8)
    px[5:15, 5:15] = value
    px[5:15, 5:15, 3] = 255
    return px


class TestPrivacyFilters:
    def test_none_mode_no_filter(self):
        assert make_extraction_filter(CanvasRandomization.NONE, RandomizationState(1)) is None

    def test_per_render_changes_each_readout(self):
        state = RandomizationState(42)
        f = make_extraction_filter(CanvasRandomization.PER_RENDER, state)
        px = drawn_pixels()
        a, b = f(px), f(px)
        assert not np.array_equal(a, b)
        assert state.readout_counter == 2

    def test_per_session_stable_within_session(self):
        f = make_extraction_filter(CanvasRandomization.PER_SESSION, RandomizationState(42))
        px = drawn_pixels()
        assert np.array_equal(f(px), f(px))

    def test_per_session_differs_across_sessions(self):
        px = drawn_pixels()
        f1 = make_extraction_filter(CanvasRandomization.PER_SESSION, RandomizationState(1))
        f2 = make_extraction_filter(CanvasRandomization.PER_SESSION, RandomizationState(2))
        assert not np.array_equal(f1(px), f2(px))

    def test_noise_only_touches_drawn_pixels(self):
        f = make_extraction_filter(CanvasRandomization.PER_RENDER, RandomizationState(7))
        px = drawn_pixels()
        out = f(px)
        transparent = px[..., 3] == 0
        assert np.array_equal(out[transparent], px[transparent])

    def test_noise_is_subtle(self):
        f = make_extraction_filter(CanvasRandomization.PER_SESSION, RandomizationState(7))
        px = drawn_pixels()
        out = f(px)
        delta = np.abs(out.astype(int) - px.astype(int))
        assert delta.max() <= 1  # low-bit flips only

    def test_input_not_mutated(self):
        f = make_extraction_filter(CanvasRandomization.PER_RENDER, RandomizationState(7))
        px = drawn_pixels()
        original = px.copy()
        f(px)
        assert np.array_equal(px, original)


class TestVirtualClock:
    def test_monotone_ticks(self):
        clock = VirtualClock()
        times = [clock.advance() for _ in range(10)]
        assert times == sorted(times)
        assert len(set(times)) == 10

    def test_explicit_advance(self):
        clock = VirtualClock()
        clock.advance(5000.0)
        assert clock.now_ms() == 5000.0


class TestInstrument:
    def test_records_have_increasing_timestamps(self):
        inst = CanvasInstrument()
        inst.record_call("CanvasRenderingContext2D", "fillRect", (1, 2, 3, 4), None, "s.js", 1)
        inst.record_property("CanvasRenderingContext2D", "fillStyle", "#f60", "s.js", 1)
        inst.record_extraction("data:x", "image/png", 10, 10, "s.js", 1)
        times = [inst.calls[0].t_ms, inst.property_accesses[0].t_ms, inst.extractions[0].t_ms]
        assert times == sorted(times)

    def test_long_arguments_truncated(self):
        inst = CanvasInstrument()
        inst.record_call("I", "m", ("x" * 500,), None, None, 1)
        preview = inst.calls[0].args[0]
        assert len(preview) < 200
        assert "chars>" in preview

    def test_scalar_args_passed_through(self):
        inst = CanvasInstrument()
        inst.record_call("I", "m", (1.5, True, None), 7, None, 1)
        assert inst.calls[0].args == (1.5, True, None)

    def test_scripts_calling(self):
        inst = CanvasInstrument()
        inst.record_call("I", "save", (), None, "a.js", 1)
        inst.record_call("I", "fillRect", (), None, "b.js", 1)
        assert inst.scripts_calling("save") == {"a.js"}


class TestProfile:
    def test_with_extensions_copies(self):
        base = BrowserProfile()
        ext = AdBlockerExtension("x", [])
        derived = base.with_extensions(ext)
        assert derived.extensions == (ext,)
        assert base.extensions == ()
        assert derived.device is base.device


class TestAdBlockerExtension:
    def make_request(self, url, doc="https://site.example/"):
        return Request(
            URL.parse(url), ResourceType.SCRIPT, document_url=URL.parse(doc)
        )

    def test_blocks_matching_third_party(self):
        ext = AdBlockerExtension("abp", [RuleMatcher.from_text("||tracker.net^$script")])
        assert ext.on_request(self.make_request("https://tracker.net/fp.js"))
        assert ext.blocked_log == ["https://tracker.net/fp.js"]

    def test_first_party_exception(self):
        ext = AdBlockerExtension("abp", [RuleMatcher.from_text("/fp.js$script")])
        req = self.make_request("https://site.example/fp.js")
        assert not ext.on_request(req)

    def test_first_party_exception_can_be_disabled(self):
        ext = AdBlockerExtension(
            "strict",
            [RuleMatcher.from_text("/fp.js$script")],
            honor_first_party_exception=False,
        )
        assert ext.on_request(self.make_request("https://site.example/fp.js"))

    def test_extra_matchers_add_coverage(self):
        ext = AdBlockerExtension(
            "ubo",
            [RuleMatcher.from_text("||a.net^$script")],
            extra_matchers=[RuleMatcher.from_text("||b.net^$script")],
        )
        assert ext.on_request(self.make_request("https://b.net/x.js"))

    def test_unlisted_allowed(self):
        ext = AdBlockerExtension("abp", [RuleMatcher.from_text("||tracker.net^$script")])
        assert not ext.on_request(self.make_request("https://benign.org/x.js"))
