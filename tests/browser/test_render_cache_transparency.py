"""Property test: render caching is invisible to every fingerprinting vendor.

For each of the thirteen vendor scripts the study deploys, the extractions a
page produces must be byte-identical whether the render caches are disabled,
cold, or warm — otherwise caching would perturb canvas hashes and corrupt
every downstream clustering/attribution result.  A warm re-crawl of the same
page must also actually *hit* the whole-canvas cache (the speedup exists).
"""

import pytest

from repro import perf
from repro.browser import Browser
from repro.net import Network
from repro.webgen.vendors import VENDOR_SPECS

CUSTOMER = "customer.example"


@pytest.fixture(autouse=True)
def cache_sandbox():
    saved = perf.current_config()
    perf.configure(perf.RenderCacheConfig())
    perf.reset_all()
    yield
    perf.configure(saved)
    perf.reset_all()


def load_vendor(spec):
    net = Network()
    site = net.server_for(CUSTOMER)
    site.add_resource("/", "<script src='/fp.js'></script>")
    source = spec.source(CUSTOMER) if spec.per_site else spec.source()
    site.add_script("/fp.js", source)
    page = Browser(net).load(f"https://{CUSTOMER}/")
    return tuple((e.mime, e.data_url) for e in page.instrument.extractions)


@pytest.mark.parametrize("spec", VENDOR_SPECS, ids=[s.name for s in VENDOR_SPECS])
def test_vendor_extractions_cache_transparent(spec):
    perf.configure(perf.RenderCacheConfig(enabled=False))
    disabled = load_vendor(spec)
    assert len(disabled) == spec.extractions

    perf.configure(perf.RenderCacheConfig())
    perf.reset_all()
    cold = load_vendor(spec)
    warm = load_vendor(spec)

    assert disabled == cold, f"{spec.name}: cold cached render diverged"
    assert disabled == warm, f"{spec.name}: warm cached render diverged"
    snap = perf.PERF.snapshot()
    assert snap.get("render_cache", {}).get("hits", 0) >= 1, (
        f"{spec.name}: warm re-crawl never hit the render cache"
    )


def test_render_twice_vendors_still_consistent():
    """§5.3 consistency checks (same canvas rendered twice in one page)
    compare equal with caching on — and the second render is a cache hit."""
    double = [s for s in VENDOR_SPECS if s.double_render]
    assert double, "expected at least one render-twice vendor"
    for spec in double[:2]:
        perf.reset_all()
        load_vendor(spec)
        assert perf.PERF.snapshot()["render_cache"]["hits"] >= 1
