"""Edge-case tests for the JS canvas bindings."""

from repro.browser import Browser
from repro.net import Network


def load(script, host="edge.example"):
    net = Network()
    net.server_for(host).add_resource("/", f"<script>{script}</script>")
    return Browser(net).load(f"https://{host}/")


class TestBindingEdges:
    def test_to_data_url_with_quality_recorded(self):
        page = load(
            "var c = document.createElement('canvas');"
            "c.getContext('2d').fillRect(0,0,50,50);"
            "c.toDataURL('image/jpeg', 0.4);"
        )
        call = next(c for c in page.instrument.calls if c.method == "toDataURL")
        assert call.args == ("image/jpeg", 0.4)
        (extraction,) = page.instrument.extractions
        assert extraction.mime == "image/jpeg"

    def test_unknown_context_type_null(self):
        page = load(
            "var c = document.createElement('canvas');"
            "console.log(c.getContext('webgl2') === null);"
        )
        assert page.console == ["true"]

    def test_invalid_canvas_size_uses_default(self):
        page = load(
            "var c = document.createElement('canvas');"
            "c.width = -5; c.height = 0/0;"
            "console.log(c.width, c.height);"
        )
        assert page.console == ["300 150"]

    def test_canvas_resize_resets_pixels(self):
        page = load(
            "var c = document.createElement('canvas');"
            "var g = c.getContext('2d');"
            "g.fillRect(0, 0, 50, 50);"
            "c.width = 100;"
            "var g2 = c.getContext('2d');"
            "console.log(g2.getImageData(0, 0, 1, 1).data[3]);"
        )
        assert page.console == ["0"]

    def test_gradient_through_js(self):
        page = load(
            "var c = document.createElement('canvas');"
            "c.width = 40; c.height = 10;"
            "var g = c.getContext('2d');"
            "var grad = g.createLinearGradient(0, 0, 40, 0);"
            "grad.addColorStop(0, '#000000');"
            "grad.addColorStop(1, '#ffffff');"
            "g.fillStyle = grad;"
            "g.fillRect(0, 0, 40, 10);"
            "var d = g.getImageData(0, 5, 40, 1);"
            "console.log(d.data[0] < d.data[4 * 39]);"
        )
        assert page.console == ["true"]

    def test_gradient_bad_stop_throws_catchable(self):
        page = load(
            "var g = document.createElement('canvas').getContext('2d');"
            "var grad = g.createLinearGradient(0, 0, 1, 1);"
            "var r = 'ok';"
            "try { grad.addColorStop(2, 'red'); } catch (e) { r = 'threw'; }"
            "console.log(r);"
        )
        assert page.console == ["threw"]

    def test_negative_arc_radius_throws_catchable(self):
        page = load(
            "var g = document.createElement('canvas').getContext('2d');"
            "var r = 'ok';"
            "try { g.arc(0, 0, -2, 0, 1); } catch (e) { r = 'threw'; }"
            "console.log(r);"
        )
        assert page.console == ["threw"]

    def test_pixel_array_write(self):
        page = load(
            "var g = document.createElement('canvas').getContext('2d');"
            "var img = g.createImageData(2, 2);"
            "img.data[0] = 999;"   # clamped to 255
            "img.data[1] = 128;"
            "g.putImageData(img, 0, 0);"
            "var out = g.getImageData(0, 0, 1, 1);"
            "console.log(out.data[0], out.data[1]);"
        )
        assert page.console == ["255 128"]

    def test_context_canvas_backreference(self):
        page = load(
            "var c = document.createElement('canvas');"
            "c.width = 77;"
            "var g = c.getContext('2d');"
            "console.log(g.canvas.width);"
        )
        assert page.console == ["77"]

    def test_property_read_returns_current_value(self):
        page = load(
            "var g = document.createElement('canvas').getContext('2d');"
            "g.fillStyle = '#abcdef';"
            "console.log(g.fillStyle);"
            "g.globalAlpha = 0.5;"
            "console.log(g.globalAlpha);"
        )
        assert page.console == ["#abcdef", "0.5"]

    def test_draw_image_canvas_to_canvas_via_js(self):
        page = load(
            "var src = document.createElement('canvas');"
            "src.width = 10; src.height = 10;"
            "src.getContext('2d').fillRect(0, 0, 10, 10);"
            "var dst = document.createElement('canvas');"
            "dst.width = 30; dst.height = 30;"
            "var g = dst.getContext('2d');"
            "g.drawImage(src, 5, 5);"
            "console.log(g.getImageData(8, 8, 1, 1).data[3]);"
        )
        assert page.console == ["255"]
