"""Integration tests: page loading, script execution, canvas instrumentation."""

import pytest

from repro.browser import AdBlockerExtension, Browser, BrowserProfile, CanvasRandomization
from repro.blocklists.matcher import RuleMatcher
from repro.canvas.device import APPLE_M1
from repro.net.server import Network

FP_SCRIPT = """
var canvas = document.createElement('canvas');
canvas.width = 240;
canvas.height = 60;
var ctx = canvas.getContext('2d');
ctx.textBaseline = 'top';
ctx.font = "14px 'Arial'";
ctx.fillStyle = '#f60';
ctx.fillRect(125, 1, 62, 20);
ctx.fillStyle = '#069';
ctx.fillText('Cwm fjordbank glyphs vext quiz', 2, 15);
var result = canvas.toDataURL();
"""

PAGE_HTML = """
<html><head><title>Test Shop</title></head>
<body>
<script src="/fp.js"></script>
<script>var inlineRan = true;</script>
</body></html>
"""


@pytest.fixture
def network():
    net = Network()
    site = net.server_for("shop.example")
    site.add_resource("/", PAGE_HTML)
    site.add_script("/fp.js", FP_SCRIPT)
    return net


class TestPageLoad:
    def test_loads_and_titles(self, network):
        page = Browser(network).load("https://shop.example/")
        assert page.ok
        assert page.title == "Test Shop"

    def test_failed_load(self, network):
        page = Browser(network).load("https://missing.example/")
        assert not page.ok
        assert page.status == 0

    def test_scripts_execute_in_order(self, network):
        page = Browser(network).load("https://shop.example/")
        assert page.executed_scripts == [
            "https://shop.example/fp.js",
            "https://shop.example/#inline",
        ]
        assert not page.script_errors

    def test_script_sources_captured(self, network):
        page = Browser(network).load("https://shop.example/")
        assert "fjordbank" in page.script_sources["https://shop.example/fp.js"]

    def test_script_error_contained(self, network):
        site = network.server_for("broken.example")
        site.add_resource(
            "/", "<script>totally.bogus();</script><script>var after = 1;</script>"
        )
        page = Browser(network).load("https://broken.example/")
        assert page.ok
        assert len(page.script_errors) == 1
        assert len(page.executed_scripts) == 2  # the second script still ran


class TestInstrumentation:
    def test_extraction_recorded_with_script_url(self, network):
        page = Browser(network).load("https://shop.example/")
        assert len(page.instrument.extractions) == 1
        ext = page.instrument.extractions[0]
        assert ext.script_url == "https://shop.example/fp.js"
        assert ext.mime == "image/png"
        assert (ext.width, ext.height) == (240, 60)
        assert ext.data_url.startswith("data:image/png;base64,")

    def test_api_calls_recorded(self, network):
        page = Browser(network).load("https://shop.example/")
        methods = [c.method for c in page.instrument.calls]
        assert "fillText" in methods
        assert "fillRect" in methods
        assert "toDataURL" in methods
        fill_text = next(c for c in page.instrument.calls if c.method == "fillText")
        assert fill_text.args[0] == "Cwm fjordbank glyphs vext quiz"
        assert fill_text.interface == "CanvasRenderingContext2D"

    def test_property_writes_recorded(self, network):
        page = Browser(network).load("https://shop.example/")
        props = {(p.prop, p.value) for p in page.instrument.property_accesses}
        assert ("fillStyle", "#f60") in props
        assert ("textBaseline", "top") in props
        assert ("width", 240) in props  # HTMLCanvasElement property

    def test_timestamps_monotone(self, network):
        page = Browser(network).load("https://shop.example/")
        times = [c.t_ms for c in page.instrument.calls]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_deterministic_across_loads(self, network):
        url1 = Browser(network).load("https://shop.example/").instrument.extractions[0].data_url
        url2 = Browser(network).load("https://shop.example/").instrument.extractions[0].data_url
        assert url1 == url2

    def test_device_changes_fingerprint(self, network):
        base = Browser(network).load("https://shop.example/").instrument.extractions[0].data_url
        m1 = Browser(network, BrowserProfile(device=APPLE_M1)).load("https://shop.example/")
        assert m1.instrument.extractions[0].data_url != base


class TestDeferredScripts:
    HTML = """
    <html><body>
    <div class="consent-banner">We use cookies</div>
    <script data-consent="required">var consentScript = 1;</script>
    <script data-trigger="scroll">var scrollScript = 1;</script>
    <script>var eager = 1;</script>
    </body></html>
    """

    @pytest.fixture
    def page(self, network):
        site = network.server_for("banner.example")
        site.add_resource("/", self.HTML)
        return Browser(network).load("https://banner.example/")

    def test_banner_detected(self, page):
        assert page.has_consent_banner

    def test_gated_scripts_deferred(self, page):
        assert len(page.executed_scripts) == 1
        assert page.pending_count("consent") == 1
        assert page.pending_count("scroll") == 1

    def test_trigger_runs_pending(self, page):
        assert page.trigger("consent") == 1
        assert page.trigger("scroll") == 1
        assert len(page.executed_scripts) == 3
        assert page.trigger("consent") == 0  # drained


class TestAdBlocking:
    def test_third_party_script_blocked(self, network):
        tracker = network.server_for("tracker.net")
        tracker.add_script("/fp.js", FP_SCRIPT)
        site = network.server_for("victim.example")
        site.add_resource("/", '<script src="https://tracker.net/fp.js"></script>')

        blocker = AdBlockerExtension("abp", [RuleMatcher.from_text("||tracker.net^$script")])
        profile = BrowserProfile(extensions=(blocker,))
        page = Browser(network, profile).load("https://victim.example/")
        assert page.blocked_urls == ["https://tracker.net/fp.js"]
        assert not page.instrument.extractions

    def test_first_party_exception_lets_script_run(self, network):
        site = network.server_for("bundler.example")
        site.add_resource("/", '<script src="/fp.js"></script>')
        site.add_script("/fp.js", FP_SCRIPT)

        # The rule would match, but the request is first-party.
        blocker = AdBlockerExtension("abp", [RuleMatcher.from_text("/fp.js$script")])
        page = Browser(network, BrowserProfile(extensions=(blocker,))).load("https://bundler.example/")
        assert not page.blocked_urls
        assert len(page.instrument.extractions) == 1

    def test_document_rule_fails_to_block_script(self, network):
        """Appendix A.6's mgid.com failure mode, end to end."""
        vendor = network.server_for("mgid-like.com")
        vendor.add_script("/fp.js", FP_SCRIPT)
        site = network.server_for("news.example")
        site.add_resource("/", '<script src="https://mgid-like.com/fp.js"></script>')

        blocker = AdBlockerExtension("abp", [RuleMatcher.from_text("||mgid-like.com^$document")])
        page = Browser(network, BrowserProfile(extensions=(blocker,))).load("https://news.example/")
        assert not page.blocked_urls
        assert len(page.instrument.extractions) == 1

    def test_cname_cloaking_defeats_url_rules(self, network):
        vendor = network.server_for("collector.fpvendor.net")
        vendor.add_script("/fp.js", FP_SCRIPT)
        site = network.server_for("cloaked.example")
        site.add_resource("/", '<script src="https://metrics.cloaked.example/fp.js"></script>')
        network.alias("metrics.cloaked.example", "collector.fpvendor.net")

        blocker = AdBlockerExtension("abp", [RuleMatcher.from_text("||fpvendor.net^$script")])
        page = Browser(network, BrowserProfile(extensions=(blocker,))).load("https://cloaked.example/")
        # The URL is first-party (subdomain), so the blocker passes it and
        # DNS routes it to the vendor anyway.
        assert not page.blocked_urls
        assert len(page.instrument.extractions) == 1


class TestCanvasRandomization:
    RENDER_TWICE = """
    var c = document.createElement('canvas');
    c.width = 60; c.height = 30;
    var ctx = c.getContext('2d');
    ctx.fillStyle = '#336699';
    ctx.fillRect(3, 3, 50, 20);
    ctx.fillText('stable?', 5, 15);
    var first = c.toDataURL();
    var second = c.toDataURL();
    var consistent = first === second;
    """

    def make_page(self, mode):
        net = Network()
        site = net.server_for("rand.example")
        site.add_resource("/", f"<script>{self.RENDER_TWICE}</script>")
        profile = BrowserProfile(privacy_mode=mode)
        return Browser(net, profile).load("https://rand.example/")

    def test_no_defense_is_consistent(self, network):
        page = self.make_page(CanvasRandomization.NONE)
        a, b = page.instrument.extractions
        assert a.data_url == b.data_url

    def test_per_render_noise_detected_by_double_extraction(self, network):
        page = self.make_page(CanvasRandomization.PER_RENDER)
        a, b = page.instrument.extractions
        assert a.data_url != b.data_url

    def test_per_session_noise_survives_double_extraction(self, network):
        """Footnote 7: persistent noise defeats the render-twice check."""
        page = self.make_page(CanvasRandomization.PER_SESSION)
        a, b = page.instrument.extractions
        assert a.data_url == b.data_url

    def test_per_session_noise_still_changes_fingerprint(self, network):
        clean = self.make_page(CanvasRandomization.NONE)
        noised = self.make_page(CanvasRandomization.PER_SESSION)
        assert (
            clean.instrument.extractions[0].data_url
            != noised.instrument.extractions[0].data_url
        )


class TestImageDataBinding:
    def test_script_reads_pixels(self, network):
        site = network.server_for("pixels.example")
        site.add_resource(
            "/",
            """<script>
            var c = document.createElement('canvas');
            c.width = 4; c.height = 4;
            var ctx = c.getContext('2d');
            ctx.fillStyle = 'rgb(10, 20, 30)';
            ctx.fillRect(0, 0, 4, 4);
            var d = ctx.getImageData(0, 0, 2, 2);
            var first = [d.data[0], d.data[1], d.data[2], d.data[3]].join(',');
            console.log(first, d.data.length);
            </script>""",
        )
        page = Browser(network).load("https://pixels.example/")
        assert page.console == ["10,20,30,255 16"]
