"""Tests for the generated JS: every template must parse, execute in the
browser, and produce exactly the behavior the ecosystem claims for it."""

import pytest

from repro.browser import Browser
from repro.net import Network
from repro.webgen import scripts as S
from repro.webgen.vendors import VENDOR_SPECS, VENDORS_BY_NAME


def run_page(source: str):
    network = Network()
    site = network.server_for("host.example")
    site.add_resource("/", "<html><body></body></html>")
    site.add_script("/s.js", source)
    site.add_resource("/page", f'<html><script src="/s.js"></script></html>')
    browser = Browser(network)
    from repro.net.url import URL

    return browser.load(URL("https", "host.example", "/page"))


class TestVendorScripts:
    @pytest.mark.parametrize("spec", [v for v in VENDOR_SPECS if not v.per_site], ids=lambda v: v.name)
    def test_executes_cleanly(self, spec):
        page = run_page(spec.source())
        assert not page.script_errors, page.script_errors

    @pytest.mark.parametrize("spec", [v for v in VENDOR_SPECS if not v.per_site], ids=lambda v: v.name)
    def test_extraction_count_matches_spec(self, spec):
        page = run_page(spec.source())
        assert len(page.instrument.extractions) == spec.extractions

    @pytest.mark.parametrize("spec", [v for v in VENDOR_SPECS if not v.per_site], ids=lambda v: v.name)
    def test_double_render_flag_matches_behavior(self, spec):
        page = run_page(spec.source())
        hashes = [e.canvas_hash for e in page.instrument.extractions]
        has_duplicate = len(hashes) != len(set(hashes))
        assert has_duplicate == spec.double_render

    def test_vendor_canvases_distinct(self):
        """Every vendor's canvas set must differ from every other's —
        the diversity §4.2 exploits."""
        canvas_sets = {}
        for spec in VENDOR_SPECS:
            if spec.per_site:
                continue
            page = run_page(spec.source())
            canvas_sets[spec.name] = frozenset(e.canvas_hash for e in page.instrument.extractions)
        names = list(canvas_sets)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                assert not (canvas_sets[a] & canvas_sets[b]), (a, b)

    def test_fpjs_commercial_same_canvases_as_oss(self):
        """The paper: both FPJS builds render the same test canvases."""
        spec = VENDORS_BY_NAME["FingerprintJS"]
        oss = frozenset(e.canvas_hash for e in run_page(spec.source()).instrument.extractions)
        pro = frozenset(
            e.canvas_hash for e in run_page(spec.source(commercial=True)).instrument.extractions
        )
        assert oss == pro

    def test_imperva_canvas_unique_per_customer(self):
        a = run_page(S.imperva_script("alpha.example")).instrument.extractions
        b = run_page(S.imperva_script("beta.example")).instrument.extractions
        assert len(a) == len(b) == 1
        assert a[0].canvas_hash != b[0].canvas_hash


class TestBenignScripts:
    def test_webp_check_is_lossy_1x1(self):
        page = run_page(S.webp_check_script())
        (e,) = page.instrument.extractions
        assert e.mime == "image/webp"
        assert (e.width, e.height) == (1, 1)

    def test_emoji_check_is_small(self):
        page = run_page(S.emoji_check_script())
        (e,) = page.instrument.extractions
        assert e.width < 16 and e.height < 16

    def test_small_canvas_dimensions(self):
        page = run_page(S.small_canvas_script(12, "#e6e6e6"))
        (e,) = page.instrument.extractions
        assert (e.width, e.height) == (12, 12)
        assert e.mime == "image/png"

    def test_animation_tool_calls_save_restore(self):
        page = run_page(S.animation_tool_script(3))
        methods = {c.method for c in page.instrument.calls}
        assert {"save", "restore"} <= methods
        assert len(page.instrument.extractions) == 1

    def test_benign_scripts_excluded_by_detector(self):
        from repro.core import FingerprintDetector
        from repro.core.records import SiteObservation

        detector = FingerprintDetector()
        for source in (
            S.webp_check_script(),
            S.emoji_check_script(),
            S.small_canvas_script(5, "#0b365f"),
            S.animation_tool_script(1),
        ):
            page = run_page(source)
            obs = SiteObservation(
                domain="x.com",
                rank=1,
                population="top",
                success=True,
                calls=page.instrument.calls,
                extractions=page.instrument.extractions,
            )
            outcome = detector.detect(obs)
            assert not outcome.is_fingerprinting_site, source[:60]


class TestParameterizedScripts:
    def test_font_prober_extraction_count(self):
        page = run_page(S.font_prober_script(20, seed=5))
        assert len(page.instrument.extractions) == 20

    def test_font_prober_distinct_canvases(self):
        page = run_page(S.font_prober_script(12, seed=5))
        hashes = {e.canvas_hash for e in page.instrument.extractions}
        assert len(hashes) >= 6  # six fonts cycled

    def test_text_script_double_render_stable(self):
        src = S.text_fingerprint_script("probe text", double_render=True, result_var="__r")
        page = run_page(src)
        a, b = page.instrument.extractions
        assert a.canvas_hash == b.canvas_hash

    def test_different_pangrams_different_canvases(self):
        a = run_page(S.text_fingerprint_script("pangram one")).instrument.extractions[0]
        b = run_page(S.text_fingerprint_script("pangram two")).instrument.extractions[0]
        assert a.canvas_hash != b.canvas_hash

    def test_geometry_script_hue_parameter(self):
        a = run_page(S.geometry_fingerprint_script(0)).instrument.extractions[0]
        b = run_page(S.geometry_fingerprint_script(120)).instrument.extractions[0]
        assert a.canvas_hash != b.canvas_hash

    def test_analytics_filler_no_canvas(self):
        page = run_page(S.analytics_filler_script(1))
        assert not page.instrument.extractions
        assert not page.script_errors
