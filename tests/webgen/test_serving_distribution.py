"""Statistical checks on the serving-mode model (§5.2 targets)."""

from collections import Counter

import pytest

from repro.config import StudyScale
from repro.webgen import build_world
from repro.webgen.vendors import ServingMode


@pytest.fixture(scope="module")
def plans():
    world = build_world(StudyScale(fraction=0.1, seed=909))
    return [p for p in world.plans.values() if p.failure is None and p.fingerprints]


def serving_counter(plans, population, vendor=None, kind=None):
    counts = Counter()
    for plan in plans:
        if plan.population != population:
            continue
        for d in plan.deployments:
            if vendor is not None and d.vendor != vendor:
                continue
            if kind is not None and d.kind != kind:
                continue
            counts[d.serving] += 1
    return counts


class TestServingDistribution:
    def test_akamai_always_first_party_path(self, plans):
        counts = serving_counter(plans, "top", vendor="Akamai")
        assert set(counts) == {ServingMode.FIRST_PARTY_PATH}

    def test_mailru_always_third_party(self, plans):
        for pop in ("top", "tail"):
            counts = serving_counter(plans, pop, vendor="mail.ru")
            if counts:
                assert set(counts) == {ServingMode.THIRD_PARTY}

    def test_fpjs_mix_covers_all_modes_in_top(self, plans):
        counts = serving_counter(plans, "top", vendor="FingerprintJS")
        assert counts[ServingMode.FIRST_PARTY_BUNDLE] > 0
        assert counts[ServingMode.SUBDOMAIN] > 0
        assert counts[ServingMode.THIRD_PARTY] > 0

    def test_tail_boutiques_mostly_first_party(self, plans):
        counts = serving_counter(plans, "tail", kind="boutique")
        total = sum(counts.values())
        first_party = (
            counts[ServingMode.FIRST_PARTY_BUNDLE]
            + counts[ServingMode.FIRST_PARTY_PATH]
            + counts[ServingMode.SUBDOMAIN]
            + counts[ServingMode.CNAME_CLOAK]
        )
        assert total > 20
        assert first_party / total > 0.5  # drives the 52% tail figure

    def test_top_boutiques_mostly_third_party(self, plans):
        counts = serving_counter(plans, "top", kind="boutique")
        total = sum(counts.values())
        assert total > 20
        assert counts[ServingMode.THIRD_PARTY] / total > 0.55

    def test_every_serving_mode_appears_somewhere(self, plans):
        counts = Counter()
        for pop in ("top", "tail"):
            counts += serving_counter(plans, pop)
        for mode in ServingMode.ALL:
            assert counts[mode] > 0, mode
