"""Tests for world assembly: plans, materialization, serving modes, demos."""

import pytest

from repro.config import StudyScale
from repro.js.parser import parse
from repro.net.http import ResourceType
from repro.net.url import URL
from repro.webgen import build_world
from repro.webgen.vendors import VENDOR_SPECS, ServingMode


@pytest.fixture(scope="module")
def world():
    return build_world(StudyScale(fraction=0.02, seed=777))


class TestWorldStructure:
    def test_target_counts(self, world):
        assert len(world.top_targets) == 400
        assert len(world.tail_targets) == 400
        assert len(world.plans) == 800

    def test_blocklists_generated(self, world):
        assert "privacy-cs.mail.ru" in world.easylist_text
        assert "/akam/" in world.easyprivacy_text
        assert world.disconnect is not None and len(world.disconnect) > 5

    def test_demo_pages_for_demo_vendors(self, world):
        demo_vendors = {s.name for s in VENDOR_SPECS if s.has_demo}
        assert demo_vendors <= set(world.demo_pages)
        for url in world.demo_pages.values():
            response = world.network.get(url)
            assert response.ok
            assert "<script" in response.body

    def test_vendor_knowledge_covers_all_vendors(self, world):
        knowledge = world.vendor_knowledge()
        assert {k.name for k in knowledge} == {s.name for s in VENDOR_SPECS}
        imperva = next(k for k in knowledge if k.name == "Imperva")
        assert imperva.uses_url_regex


class TestSiteMaterialization:
    def test_successful_homepages_load(self, world):
        ok_plans = [p for p in world.plans.values() if p.failure is None][:50]
        for plan in ok_plans:
            response = world.network.get(f"https://{plan.domain}/")
            assert response.ok, plan.domain
            assert "app.js" in response.body

    def test_bot_blocked_sites_403(self, world):
        blocked = [p for p in world.plans.values() if p.failure == "bot-blocked"]
        assert blocked
        for plan in blocked[:10]:
            assert world.network.get(f"https://{plan.domain}/").status == 403

    def test_network_error_sites_unresolvable(self, world):
        dead = [p for p in world.plans.values() if p.failure == "network-error"]
        assert dead
        for plan in dead[:10]:
            assert world.network.get(f"https://{plan.domain}/").status == 0

    def test_every_script_tag_resolves(self, world):
        """No dangling script srcs on working fingerprinting sites."""
        import re

        checked = 0
        for plan in world.plans.values():
            if plan.failure is not None or not plan.fingerprints:
                continue
            page = world.network.get(f"https://{plan.domain}/")
            for src in re.findall(r'src="([^"]+)"', page.body):
                url = URL.parse(src) if src.startswith("http") else URL.parse(f"https://{plan.domain}{src}")
                response = world.network.get(str(url), resource_type=ResourceType.SCRIPT)
                assert response.ok, f"{plan.domain} -> {src}"
                checked += 1
            if checked > 120:
                break
        assert checked > 20

    def test_all_served_scripts_parse(self, world):
        """Every generated script must be valid for the JS engine."""
        import re

        parsed = 0
        for plan in list(world.plans.values())[:200]:
            if plan.failure is not None:
                continue
            page = world.network.get(f"https://{plan.domain}/")
            for src in re.findall(r'src="([^"]+)"', page.body):
                full = src if src.startswith("http") else f"https://{plan.domain}{src}"
                body = world.network.get(full).body
                parse(body, full)
                parsed += 1
        assert parsed > 50


class TestServingModes:
    def test_bundled_vendor_code_in_app_js(self, world):
        bundled = [
            p
            for p in world.plans.values()
            if p.failure is None
            and any(d.serving == ServingMode.FIRST_PARTY_BUNDLE for d in p.deployments)
        ]
        assert bundled
        plan = bundled[0]
        bundle = world.network.get(f"https://{plan.domain}/assets/app.js").body
        assert "__pageAnalytics" in bundle  # site code
        assert "toDataURL" in bundle        # vendor payload concatenated

    def test_cname_cloak_resolves_to_vendor(self, world):
        cloaked = [
            (p, d)
            for p in world.plans.values()
            if p.failure is None
            for d in p.deployments
            if d.serving == ServingMode.CNAME_CLOAK and d.script_src
        ]
        if not cloaked:
            pytest.skip("no CNAME-cloaked deployment at this scale/seed")
        plan, deployment = cloaked[0]
        host = URL.parse(deployment.script_src).host
        assert host.endswith(plan.domain)          # looks first-party
        assert world.network.dns.is_cloaked(host)  # but is cloaked
        assert world.network.get(deployment.script_src).ok

    def test_akamai_always_first_party(self, world):
        akamai = [
            d
            for p in world.plans.values()
            for d in p.deployments
            if d.vendor == "Akamai" and p.failure is None
        ]
        assert akamai
        assert all(d.serving == ServingMode.FIRST_PARTY_PATH for d in akamai)
        assert all(d.script_src.startswith("/akam/") for d in akamai)

    def test_imperva_unique_bare_paths(self, world):
        from repro.core.attribution import IMPERVA_URL_REGEX

        imperva = [
            (p, d)
            for p in world.plans.values()
            for d in p.deployments
            if d.vendor == "Imperva" and p.failure is None
        ]
        if not imperva:
            pytest.skip("no Imperva deployment at this scale/seed")
        paths = set()
        for plan, deployment in imperva:
            url = f"https://{plan.domain}{deployment.script_src}"
            assert IMPERVA_URL_REGEX.match(url), url
            paths.add(deployment.script_src)
        assert len(paths) == len(imperva)  # unique per customer

    def test_shopify_tail_heavy(self, world):
        shopify = [p for p in world.plans.values() if any(d.vendor == "Shopify" for d in p.deployments)]
        tail = sum(1 for p in shopify if p.population == "tail")
        assert tail >= len(shopify) - tail  # more tail than top


class TestGroundTruthRates:
    def test_fp_rate_in_band(self, world):
        for pop, low, high in (("top", 0.08, 0.18), ("tail", 0.06, 0.14)):
            plans = [p for p in world.plans.values() if p.population == pop and p.failure is None]
            rate = sum(1 for p in plans if p.fingerprints) / len(plans)
            assert low < rate < high, (pop, rate)

    def test_failure_rate_in_band(self, world):
        top = [p for p in world.plans.values() if p.population == "top"]
        failures = sum(1 for p in top if p.failure is not None)
        assert 0.10 < failures / len(top) < 0.28
