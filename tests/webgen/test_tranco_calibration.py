"""Tests for the ranking, calibration derivations, and boutique catalog."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PAPER
from repro.webgen.boutique import BoutiqueCatalog
from repro.webgen.calibration import derive_params
from repro.webgen.tranco import TrancoRanking


class TestTranco:
    def test_top_ranks_sequential(self):
        targets = TrancoRanking().top(100)
        assert [t.rank for t in targets] == list(range(1, 101))
        assert all(t.population == "top" for t in targets)

    def test_domains_deterministic(self):
        r1, r2 = TrancoRanking(seed=7), TrancoRanking(seed=7)
        assert [t.domain for t in r1.top(50)] == [t.domain for t in r2.top(50)]

    def test_different_seeds_differ(self):
        a = [t.domain for t in TrancoRanking(seed=1).top(50)]
        b = [t.domain for t in TrancoRanking(seed=2).top(50)]
        assert a != b

    def test_domains_unique(self):
        domains = [t.domain for t in TrancoRanking().top(2000)]
        assert len(set(domains)) == len(domains)

    def test_tail_sample_range(self):
        targets = TrancoRanking().tail_sample(500)
        assert all(20_000 < t.rank <= 1_000_000 for t in targets)
        assert all(t.population == "tail" for t in targets)
        assert len({t.rank for t in targets}) == 500

    def test_tail_sample_disjoint_from_top(self):
        ranking = TrancoRanking()
        top = {t.domain for t in ranking.top(1000)}
        tail = {t.domain for t in ranking.tail_sample(1000)}
        assert not top & tail

    def test_ru_share_near_target(self):
        targets = TrancoRanking().top(5000)
        ru = sum(1 for t in targets if t.domain.endswith(".ru"))
        assert 0.03 < ru / len(targets) < 0.065

    def test_rank_zero_rejected(self):
        with pytest.raises(ValueError):
            TrancoRanking().domain_at(0)


class TestCalibration:
    @pytest.fixture
    def params(self):
        return derive_params(PAPER)

    def test_success_rates(self, params):
        assert params.top.success_rate == pytest.approx(16_276 / 20_000)
        assert params.tail.success_rate == pytest.approx(17_260 / 20_000)

    def test_fp_rates(self, params):
        assert params.top.fp_rate == pytest.approx(0.127, abs=0.001)
        assert params.tail.fp_rate == pytest.approx(0.099, abs=0.001)

    def test_mailru_rate_is_one_third_for_top(self, params):
        assert params.top.mailru_given_ru == pytest.approx(1 / 3, abs=0.05)

    def test_combined_fp_probability_matches_target(self, params):
        """P(mail.ru or other) must equal the paper's prevalence."""
        for rates, ru_share in ((params.top, params.ru_share), (params.tail, params.ru_share)):
            p_m = ru_share * rates.mailru_given_ru
            combined = p_m + (1 - p_m) * rates.other_fp_rate
            assert combined == pytest.approx(rates.fp_rate, rel=1e-6)

    def test_primary_weights_are_probabilities(self, params):
        for rates in (params.top, params.tail):
            weights = rates.weights_dict()
            assert all(w >= 0 for w in weights.values())
            assert sum(weights.values()) == pytest.approx(1.0, abs=1e-6)
            assert "boutique" in weights

    def test_small_vendor_rates_match_table1(self, params):
        rates = dict(params.top.small_vendor_rates)
        assert rates["Imperva"] == pytest.approx(49 / 2067, rel=1e-6)
        assert rates["GeeTest"] == pytest.approx(1 / 2067, rel=1e-6)

    def test_shopify_weight_tail_heavy(self, params):
        top_w = params.top.weights_dict()["Shopify"]
        tail_w = params.tail.weights_dict()["Shopify"]
        assert tail_w > top_w * 5


class TestBoutiqueCatalog:
    @pytest.fixture
    def catalog(self):
        return BoutiqueCatalog(size=300, seed=11)

    def test_deterministic(self):
        a = BoutiqueCatalog(size=50, seed=3)
        b = BoutiqueCatalog(size=50, seed=3)
        assert [s.source for s in a] == [s.source for s in b]

    def test_distinct_sources(self, catalog):
        sources = {s.source for s in catalog}
        assert len(sources) == len(catalog)

    def test_unique_hosts(self, catalog):
        hosts = {s.host for s in catalog}
        assert len(hosts) == len(catalog)

    def test_zipf_sampling_head_heavy(self, catalog):
        rng = random.Random(5)
        draws = [catalog.sample_index(rng, "top") for _ in range(3000)]
        head = sum(1 for d in draws if d < 10)
        mid = sum(1 for d in draws if 50 <= d < 60)
        assert head > mid * 3

    def test_top_population_avoids_tail_band(self, catalog):
        rng = random.Random(5)
        band_start = int(len(catalog) * 0.7)
        draws = [catalog.sample_index(rng, "top") for _ in range(2000)]
        assert all(d < band_start for d in draws)

    def test_tail_population_reaches_tail_band(self, catalog):
        rng = random.Random(5)
        band_start = int(len(catalog) * 0.7)
        draws = [catalog.sample_index(rng, "tail") for _ in range(2000)]
        assert any(d >= band_start for d in draws)

    def test_font_probers_exist(self, catalog):
        probers = [s for s in catalog if s.extractions >= 20]
        assert probers
        assert all("__fontProbe" in s.source for s in probers)

    def test_blockable_implies_listed(self, catalog):
        for s in catalog:
            if s.easylist_blockable:
                assert s.in_easylist


@settings(max_examples=20)
@given(rank=st.integers(1, 1_000_000))
def test_domain_at_stable(rank):
    ranking = TrancoRanking(seed=99)
    assert ranking.domain_at(rank) == ranking.domain_at(rank)
