"""Full-pipeline integration tests: the whole study at small scale.

These are the repository's strongest checks: they run the complete
methodology (crawl -> detect -> cluster -> attribute -> context -> evasion)
over a freshly built synthetic world and verify that the paper's qualitative
findings — who wins, the direction of every effect — hold.
"""

import pytest

from repro.config import StudyScale
from repro.core.pipeline import validate_cross_machine
from repro.webgen import build_world


@pytest.fixture(scope="module")
def world():
    return build_world(StudyScale(fraction=0.04, seed=4242))


@pytest.fixture(scope="module")
def result(world):
    return world.run_full_study(include_adblock_crawls=True)


class TestPrevalence:
    def test_prevalence_bands(self, result):
        assert 0.08 < result.prevalence.top.prevalence < 0.18
        assert 0.05 < result.prevalence.tail.prevalence < 0.15

    def test_top_more_prevalent_than_tail(self, result):
        assert result.prevalence.top.prevalence > result.prevalence.tail.prevalence

    def test_detection_matches_ground_truth(self, world, result):
        """The pipeline must rediscover exactly the planted FP sites that
        were successfully crawled (no false positives/negatives)."""
        truth = set(world.ground_truth_fp_sites("top")) | set(world.ground_truth_fp_sites("tail"))
        # Ground truth includes sites whose only deployment was blocked or
        # errored; with no ad blocker in the control crawl they all run.
        measured = result.fp_sites["top"] | result.fp_sites["tail"]
        assert measured == truth

    def test_median_canvases(self, result):
        values = result.prevalence.combined_canvases_per_site
        assert values
        ordered = sorted(values)
        assert ordered[len(ordered) // 2] in (1, 2, 3)

    def test_canvas_count_tail_exists(self, result):
        """Font probers give some sites dozens of canvases (paper max: 60)."""
        assert result.prevalence.top.max_canvases <= 60


class TestDetectionQuality:
    def test_fingerprintable_fraction_band(self, result):
        from repro.core.detection import FingerprintDetector

        fraction = FingerprintDetector.fingerprintable_fraction(result.outcomes.values())
        assert 0.70 < fraction < 0.95  # paper: 83%

    def test_benign_exclusions_present(self, result):
        from repro.core.detection import ExclusionReason

        reasons = [r for o in result.outcomes.values() for _, r in o.excluded]
        assert ExclusionReason.LOSSY_FORMAT in reasons
        assert ExclusionReason.TOO_SMALL in reasons
        assert ExclusionReason.ANIMATION_SCRIPT in reasons


class TestClusteringAndAttribution:
    def test_akamai_is_top_vendor(self, result):
        counts = result.vendor_counts
        akamai = counts["Akamai"]["top"]
        assert akamai > 0
        others = [counts[v]["top"] for v in counts if v not in ("Akamai", "FingerprintJS")]
        assert akamai >= max(others)

    def test_shopify_dominates_tail(self, result):
        counts = result.vendor_counts
        assert counts["Shopify"]["tail"] > counts["Shopify"]["top"]

    def test_attribution_majority(self, result):
        fp_top = len(result.fp_sites["top"])
        if fp_top:
            assert result.vendor_totals["top"] / fp_top > 0.5

    def test_attribution_survives_bundling(self, world, result):
        """Bundled vendor deployments must still be attributed by canvas."""
        from repro.webgen.vendors import ServingMode

        bundled_fpjs = {
            p.domain
            for p in world.plans.values()
            if p.failure is None
            and any(
                d.vendor == "FingerprintJS" and d.serving == ServingMode.FIRST_PARTY_BUNDLE
                for d in p.deployments
            )
        }
        attributed = {
            d for d, a in result.attributions.items() if "FingerprintJS" in a.vendors
        }
        missing = bundled_fpjs - attributed
        assert not missing, f"bundled FPJS sites not attributed: {sorted(missing)[:5]}"

    def test_cluster_shape_long_tailed(self, result):
        sizes = sorted((c.site_count() for c in result.clusters.values()), reverse=True)
        assert sizes[0] >= 5                       # a dominant head
        singletons = sum(1 for s in sizes if s == 1)
        assert singletons >= len(sizes) * 0.3      # and a long tail


class TestContextAndEvasion:
    def test_blocklist_coverage_ordering(self, result):
        """EasyPrivacy >= Disconnect; Any >= each; All <= each (set algebra)."""
        bc = result.blocklist_context
        rows = bc.rows()
        for counts in rows.values():
            assert counts.top <= bc.any_list.top or counts is bc.any_list
        assert bc.all_lists.top <= bc.easylist.top
        assert bc.all_lists.top <= bc.easyprivacy.top
        assert bc.all_lists.top <= bc.disconnect.top
        assert bc.any_list.top <= bc.totals.top

    def test_meaningful_blocklist_coverage(self, result):
        bc = result.blocklist_context
        frac_top, _ = bc.any_list.fraction(bc.totals)
        assert 0.2 < frac_top < 0.7  # paper: 45%

    def test_adblockers_barely_help(self, result):
        control, abp, ubo = result.adblock_rows
        for row in (abp, ubo):
            for pop in ("top", "tail"):
                kept = row.canvases[pop] / max(1, control.canvases[pop])
                assert kept > 0.85, (row.label, pop, kept)  # paper: ~95-97%
                assert kept <= 1.0

    def test_ubo_blocks_at_least_as_much_as_abp(self, result):
        _, abp, ubo = result.adblock_rows
        assert ubo.canvases["top"] + ubo.canvases["tail"] <= abp.canvases["top"] + abp.canvases["tail"]

    def test_first_party_serving_common(self, result):
        sc = result.serving_context
        assert 0.3 < sc.first_party_fraction("top") < 0.7  # paper: 49%

    def test_subdomain_top_heavier_than_tail(self, result):
        sc = result.serving_context
        assert sc.subdomain_fraction("top") > sc.subdomain_fraction("tail")

    def test_render_twice_band(self, result):
        assert 0.25 < result.render_twice < 0.65  # paper: 45%


class TestCrossMachine:
    def test_groupings_agree_across_devices(self, world):
        assert validate_cross_machine(world.network, world.all_targets[:120])


class TestCrossMachineFleet:
    def test_groupings_agree_across_a_device_fleet(self, world):
        """§3.1 generalized: grouping is invariant across many device stacks."""
        from repro.canvas.device import INTEL_UBUNTU, device_fleet

        devices = [INTEL_UBUNTU] + device_fleet(3)
        assert validate_cross_machine(world.network, world.all_targets[:60], devices=devices)


class TestGatingHandled:
    def test_gated_deployments_still_detected(self, world, result):
        """Consent- and scroll-gated fingerprinting still counts: the crawler
        opts in to banners and simulates scrolling (§3.1)."""
        gated = {
            p.domain
            for p in world.plans.values()
            if p.failure is None and any(d.gating for d in p.deployments)
        }
        assert gated, "generator must gate some deployments"
        detected = result.fp_sites["top"] | result.fp_sites["tail"]
        missing = gated - detected
        assert not missing, sorted(missing)[:5]
