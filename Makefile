# Convenience targets for the reproduction.

.PHONY: install test bench study study-full artifacts examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Reduced-scale study (fast); all experiments + paper-vs-measured diff.
study:
	python -m repro.experiments

# The paper's full 20k + 20k crawl (~6 minutes).
study-full:
	python -m repro.experiments --scale 1.0

artifacts:
	python -m repro.experiments --scale 1.0 --artifacts artifacts/

examples:
	python examples/quickstart.py
	python examples/adblock_evasion.py
	python examples/canvas_randomization.py
	python examples/device_entropy.py 24

clean:
	rm -rf artifacts/ .pytest_cache/ .benchmarks/
	find . -name __pycache__ -type d -exec rm -rf {} +
